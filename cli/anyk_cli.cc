#include "anyk_cli.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <thread>

#include "anyk/explain.h"
#include "anyk/factory.h"
#include "anyk/prepared_query.h"
#include "anyk/ranked_query.h"
#include "anyk/sharded_query.h"
#include "dioid/max_plus.h"
#include "dioid/max_times.h"
#include "dioid/min_max.h"
#include "dioid/tropical.h"
#include "query/sql.h"
#include "storage/database.h"
#include "storage/kernels.h"
#include "util/alloc_stats.h"
#include "util/checkpoints.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

#ifndef ANYK_VERSION
#define ANYK_VERSION "dev"
#endif

namespace anyk {
namespace cli {

namespace {

// v2 added the memory section (enumeration allocs, peak RSS) to `timings`;
// v3 adds the concurrent-drain fields (threads, and — with --sessions N —
// timings.sessions[] plus timings.aggregate_answers_per_sec); v4 adds the
// planner section (resolved_algorithm + planner{} always, explain with
// --explain); v5 adds the sharding field (`shards`, --shards N).
constexpr int kSchemaVersion = 5;

const char* PlanName(QueryPlan plan) {
  switch (plan) {
    case QueryPlan::kAcyclicTree: return "acyclic-tree";
    case QueryPlan::kCycleUnion: return "cycle-union";
    case QueryPlan::kGenericJoinBatch: return "generic-join-batch";
  }
  return "?";
}

std::optional<Algorithm> AlgorithmFromName(std::string name) {
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  if (name == "recursive" || name == "rec") return Algorithm::kRecursive;
  if (name == "take2") return Algorithm::kTake2;
  if (name == "lazy") return Algorithm::kLazy;
  if (name == "eager") return Algorithm::kEager;
  if (name == "all") return Algorithm::kAll;
  if (name == "batch") return Algorithm::kBatch;
  if (name == "auto") return Algorithm::kAuto;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

struct LoadedRelation {
  std::string name;
  std::string path;
  size_t rows = 0;
  size_t arity = 0;
};

struct CliResult {
  double weight;
  std::vector<Value> values;
};

// One concurrent drain thread's view (--sessions N): its own TTF/TTL
// measured from the moment the shared PreparedQuery was ready.
struct SessionReport {
  size_t produced = 0;
  double ttf_seconds = 0;
  // TT(k) of this session: when the drain is budgeted (--k / SQL LIMIT),
  // the moment the k-th answer arrived; equal to ttl_seconds when the
  // stream exhausted first or no budget was set. Tracked with an explicit
  // flag, not a 0.0 sentinel: a legitimately stamped 0.0 (coarse clock,
  // instant answer) must not get overwritten with the TTL.
  double ttk_seconds = 0;
  bool has_ttk = false;
  double ttl_seconds = 0;
  bool exhausted = false;
};

// Rows pulled per NextBatch call on the serving drains (amortizes virtual
// dispatch and binds variables stage-wise; see Enumerator::NextBatch).
constexpr size_t kDrainBatchRows = 64;

struct RunReport {
  std::string plan;
  double preprocessing_seconds = 0;
  double ttf_seconds = 0;
  double ttl_seconds = 0;
  double max_delay_seconds = 0;
  size_t produced = 0;
  bool exhausted = false;
  std::vector<std::pair<size_t, double>> checkpoints;  // (k, seconds)
  // Memory profile of the run (util/alloc_stats.h): operator-new calls per
  // phase plus the process peak RSS. With the arena-backed hot path
  // enumeration_allocs stays 0 for the tree/cycle plans once the arena is
  // warm (see docs/ARCHITECTURE.md, "Memory layout").
  size_t preprocessing_allocs = 0;
  size_t enumeration_allocs = 0;
  size_t peak_rss_kb = 0;
  // Concurrent-drain mode: one entry per session; aggregate throughput is
  // total answers / wall-clock of the slowest session. Empty when the run
  // was a single serial session.
  std::vector<SessionReport> sessions;
  double aggregate_answers_per_sec = 0;
  // Planner section (schema v4): what ran (identical to the request except
  // for `auto`, where the prepare-time decision substitutes), the one-line
  // planner summary, and — on request — the full EXPLAIN text.
  std::string resolved_algorithm;
  std::string planner_summary;
  std::string explain_text;
};

using RowSink =
    std::function<void(size_t k, double weight, const std::vector<Value>&)>;

/// Build the shared pipeline (charged to preprocessing, as in the paper) and
/// pull answers until `limit` (0 = all), timing TTF / TT(k) / TTL. With
/// `num_sessions` > 1, N threads each drain their own EnumerationSession of
/// the one prepared query concurrently (no per-answer sink; per-session TTLs
/// and the aggregate answers/sec land in the report instead). `shards` > 1
/// hash-partitions the data and prepares S per-shard pipelines whose
/// sessions merge through a ranked union (anyk/sharded_query.h); with
/// `parallel_drain` each shard session additionally drains on its own
/// worker thread. shards == 1 is the unsharded passthrough, byte-identical
/// to the pre-sharding CLI.
template <typename D>
RunReport RunRanked(const Database& db, const SqlStatement& stmt,
                    Algorithm algo, size_t limit,
                    const std::vector<size_t>& cps, const RowSink& sink,
                    ThreadPool* pool, size_t num_sessions, size_t shards,
                    bool parallel_drain, bool want_explain,
                    KernelKind kernels) {
  RunReport rep;
  const AllocCounts at_start = CurrentAllocCounts();
  Timer timer;
  typename ShardedPreparedQuery<D>::Options sopts;
  typename PreparedQuery<D>::Options& qopts = sopts.prepare;
  qopts.enum_opts.with_witness = false;
  qopts.enum_opts.kernels = kernels;
  // Budget-aware top-k fast path: --k / SQL LIMIT reaches every enumerator
  // as EnumOptions::k_budget (bounded O(k) candidate heaps, batch partial
  // sort) instead of merely truncating the drain loop below.
  qopts.enum_opts.k_budget = limit;
  qopts.pool = pool;
  // `auto` also unlocks the planner's topology choice (join-tree root /
  // stage order), not just the strategy pick.
  qopts.auto_plan = algo == Algorithm::kAuto;
  sopts.shards = shards;
  sopts.parallel_drain = parallel_drain;
  ShardedPreparedQuery<D> pq(db, stmt.query, sopts);
  rep.plan = PlanName(pq.plan());
  rep.resolved_algorithm = AlgorithmName(
      algo == Algorithm::kAuto ? pq.decision().algorithm : algo);
  rep.planner_summary = pq.decision().Summary();
  // EXPLAIN shows shard 0's pipeline shape (all shards share it — only the
  // data differs); the planner summary above is the cross-shard decision.
  if (want_explain) rep.explain_text = Explain(pq.shard(0));

  if (num_sessions > 1) {
    rep.preprocessing_seconds = timer.Seconds();
    const AllocCounts at_enum = CurrentAllocCounts();
    rep.preprocessing_allocs = AllocDelta(at_start, at_enum).news;
    // Concurrent-drain mode: every session pulls the full (limited) stream
    // through its own budgeted session, in batches.
    rep.sessions.assign(num_sessions, {});
    std::vector<std::thread> workers;
    workers.reserve(num_sessions);
    for (size_t s = 0; s < num_sessions; ++s) {
      workers.emplace_back([&pq, &timer, &rep, algo, limit, s] {
        SessionReport& sr = rep.sessions[s];
        EnumerationSession<D> sess = pq.NewSession(algo);
        std::vector<ResultRow<D>> batch(kDrainBatchRows);
        bool done = false;
        while (!done && (limit == 0 || sr.produced < limit)) {
          size_t want = kDrainBatchRows;
          if (sr.produced == 0) want = 1;  // exact per-session TTF
          if (limit != 0) want = std::min(want, limit - sr.produced);
          const size_t got = sess.NextBatch(batch.data(), want);
          if (got < want) {
            sr.exhausted = true;
            done = true;
          }
          if (got == 0) break;
          sr.produced += got;
          if (sr.produced == got) sr.ttf_seconds = timer.Seconds();
          if (limit != 0 && sr.produced >= limit) {
            sr.ttk_seconds = timer.Seconds();
            sr.has_ttk = true;
          }
        }
        sr.ttl_seconds = timer.Seconds();
        if (!sr.has_ttk) sr.ttk_seconds = sr.ttl_seconds;
      });
    }
    for (std::thread& w : workers) w.join();
    rep.exhausted = true;
    bool have_ttf = false;
    for (const SessionReport& sr : rep.sessions) {
      rep.produced += sr.produced;
      rep.exhausted = rep.exhausted && sr.exhausted;
      // A session that produced nothing never stamped a TTF; folding its 0.0
      // into the min would report a first answer that never arrived.
      if (sr.produced > 0) {
        rep.ttf_seconds =
            have_ttf ? std::min(rep.ttf_seconds, sr.ttf_seconds)
                     : sr.ttf_seconds;
        have_ttf = true;
      }
      rep.ttl_seconds = std::max(rep.ttl_seconds, sr.ttl_seconds);
    }
    const double enum_wall = rep.ttl_seconds - rep.preprocessing_seconds;
    rep.aggregate_answers_per_sec =
        enum_wall > 0 ? static_cast<double>(rep.produced) / enum_wall : 0;
    rep.enumeration_allocs = AllocDelta(at_enum, CurrentAllocCounts()).news;
    rep.peak_rss_kb = PeakRssKb();
    return rep;
  }

  // Serial path: session construction (enumerator, arena reserve) counts as
  // preprocessing, like the paper charges it — and like the pre-split CLI
  // measured it — so enumeration_allocs keeps meaning "allocations while
  // answers stream" and stays 0 for the arena-backed plans.
  EnumerationSession<D> session = pq.NewSession(algo);
  rep.preprocessing_seconds = timer.Seconds();
  const AllocCounts at_enum = CurrentAllocCounts();
  rep.preprocessing_allocs = AllocDelta(at_start, at_enum).news;
  std::vector<Value> projected;
  std::vector<ResultRow<D>> batch(kDrainBatchRows);
  size_t next_cp = 0;
  double last = rep.preprocessing_seconds;
  bool done = false;
  while (!done && (limit == 0 || rep.produced < limit)) {
    // Batch size: never cross the next TT(k) checkpoint or the --k limit,
    // so checkpoint timestamps stay exact at their k; the first pull is a
    // single row so TTF stays exact too. max_delay is measured at batch
    // granularity (the gap between consecutive NextBatch returns).
    size_t want = kDrainBatchRows;
    if (rep.produced == 0) want = 1;
    if (limit != 0) want = std::min(want, limit - rep.produced);
    while (next_cp < cps.size() && cps[next_cp] <= rep.produced) ++next_cp;
    if (next_cp < cps.size()) {
      want = std::min(want, cps[next_cp] - rep.produced);
    }
    const size_t got = session.NextBatch(batch.data(), want);
    if (got < want) {
      rep.exhausted = true;
      done = true;
    }
    if (got == 0) break;
    const double now = timer.Seconds();
    rep.max_delay_seconds = std::max(rep.max_delay_seconds, now - last);
    last = now;
    if (rep.produced == 0) rep.ttf_seconds = now;
    rep.produced += got;
    if (next_cp < cps.size() && cps[next_cp] == rep.produced) {
      rep.checkpoints.emplace_back(rep.produced, now);
      ++next_cp;
    }
    if (sink) {
      for (size_t b = 0; b < got; ++b) {
        const ResultRow<D>& row = batch[b];
        const std::vector<Value>* values = &row.assignment;
        if (!stmt.select_vars.empty()) {
          projected.clear();
          for (uint32_t v : stmt.select_vars) {
            projected.push_back(row.assignment[v]);
          }
          values = &projected;
        }
        sink(rep.produced - got + b + 1, static_cast<double>(row.weight),
             *values);
      }
    }
  }
  rep.ttl_seconds = timer.Seconds();
  rep.enumeration_allocs = AllocDelta(at_enum, CurrentAllocCounts()).news;
  rep.peak_rss_kb = PeakRssKb();
  if (rep.produced > 0 && (rep.checkpoints.empty() ||
                           rep.checkpoints.back().first != rep.produced)) {
    rep.checkpoints.emplace_back(rep.produced, rep.ttl_seconds);
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

std::vector<std::string> ColumnNames(const SqlStatement& stmt) {
  std::vector<std::string> names;
  if (stmt.select_vars.empty()) {
    for (uint32_t v = 0; v < stmt.query.NumVars(); ++v) {
      names.push_back(stmt.query.VarName(v));
    }
  } else {
    for (uint32_t v : stmt.select_vars) {
      names.push_back(stmt.query.VarName(v));
    }
  }
  return names;
}

// Emit a multi-line block as text-mode comment lines ("# " prefix), so the
// RESULT/TIMING stream stays machine-parseable around the EXPLAIN output.
void WriteCommented(std::ostream& out, const std::string& block) {
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) out << "# " << line << "\n";
}

void WriteTextReport(std::ostream& out, const RunReport& rep) {
  out << "TIMING,preprocessing,0," << rep.preprocessing_seconds << "\n";
  if (rep.produced > 0) out << "TIMING,ttf,1," << rep.ttf_seconds << "\n";
  for (const auto& [k, secs] : rep.checkpoints) {
    out << "TIMING,ttk," << k << "," << secs << "\n";
  }
  out << "TIMING,ttl," << rep.produced << "," << rep.ttl_seconds << "\n";
  out << "TIMING,max_delay,0," << rep.max_delay_seconds << "\n";
  for (size_t s = 0; s < rep.sessions.size(); ++s) {
    const SessionReport& sr = rep.sessions[s];
    out << "SESSION," << s << "," << sr.produced << "," << sr.ttf_seconds
        << "," << sr.ttk_seconds << "," << sr.ttl_seconds << ","
        << (sr.exhausted ? "exhausted" : "capped") << "\n";
  }
  if (!rep.sessions.empty()) {
    out << "CONCURRENCY,sessions," << rep.sessions.size() << ","
        << rep.aggregate_answers_per_sec << "\n";
  }
  out << "MEMORY,preprocessing_allocs," << rep.preprocessing_allocs << "\n";
  out << "MEMORY,enumeration_allocs," << rep.enumeration_allocs << "\n";
  out << "MEMORY,peak_rss_kb," << rep.peak_rss_kb << "\n";
  out << "# produced=" << rep.produced
      << " exhausted=" << (rep.exhausted ? "yes" : "no") << "\n";
}

void WriteJsonReport(std::ostream& out, const CliOptions& opt,
                     bool print_results,
                     const std::vector<LoadedRelation>& rels,
                     const SqlStatement& stmt, const std::string& algorithm,
                     const std::string& dioid, size_t limit,
                     const std::vector<CliResult>& results,
                     const RunReport& rep) {
  JsonWriter w(out);
  w.BeginObject();
  w.KV("schema_version", static_cast<int64_t>(kSchemaVersion));
  w.KV("tool", "anyk");
  w.KV("version", ANYK_VERSION);
  w.KV("sql", opt.query);
  w.KV("plan", rep.plan);
  w.KV("algorithm", algorithm);
  w.KV("resolved_algorithm", rep.resolved_algorithm);
  w.Key("planner").BeginObject();
  w.KV("summary", rep.planner_summary);
  if (!rep.explain_text.empty()) w.KV("explain", rep.explain_text);
  w.EndObject();
  w.KV("dioid", dioid);
  w.KV("limit", static_cast<uint64_t>(limit));
  w.KV("threads", static_cast<uint64_t>(opt.threads));
  w.KV("sessions", static_cast<uint64_t>(opt.sessions));
  w.KV("shards", static_cast<uint64_t>(opt.shards));
  w.Key("relations").BeginArray();
  for (const LoadedRelation& r : rels) {
    w.BeginObject();
    w.KV("name", r.name);
    w.KV("path", r.path);
    w.KV("rows", static_cast<uint64_t>(r.rows));
    w.KV("arity", static_cast<uint64_t>(r.arity));
    w.EndObject();
  }
  w.EndArray();
  w.Key("columns").BeginArray();
  for (const std::string& c : ColumnNames(stmt)) w.String(c);
  w.EndArray();
  if (print_results) {
    w.Key("results").BeginArray();
    for (size_t i = 0; i < results.size(); ++i) {
      w.BeginObject();
      w.KV("k", static_cast<uint64_t>(i + 1));
      w.KV("weight", results[i].weight);
      w.Key("values").BeginArray();
      for (Value v : results[i].values) w.Int(v);
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
  }
  w.Key("timings").BeginObject();
  w.KV("preprocessing_seconds", rep.preprocessing_seconds);
  w.KV("ttf_seconds", rep.ttf_seconds);
  w.KV("ttl_seconds", rep.ttl_seconds);
  w.KV("max_delay_seconds", rep.max_delay_seconds);
  w.KV("produced", static_cast<uint64_t>(rep.produced));
  w.KV("exhausted", rep.exhausted);
  if (!rep.sessions.empty()) {
    w.KV("aggregate_answers_per_sec", rep.aggregate_answers_per_sec);
    w.Key("sessions").BeginArray();
    for (const SessionReport& sr : rep.sessions) {
      w.BeginObject();
      w.KV("produced", static_cast<uint64_t>(sr.produced));
      w.KV("ttf_seconds", sr.ttf_seconds);
      w.KV("ttk_seconds", sr.ttk_seconds);
      w.KV("ttl_seconds", sr.ttl_seconds);
      w.KV("exhausted", sr.exhausted);
      w.EndObject();
    }
    w.EndArray();
  }
  w.KV("preprocessing_allocs",
       static_cast<uint64_t>(rep.preprocessing_allocs));
  w.KV("enumeration_allocs", static_cast<uint64_t>(rep.enumeration_allocs));
  w.KV("peak_rss_kb", static_cast<uint64_t>(rep.peak_rss_kb));
  w.Key("checkpoints").BeginArray();
  for (const auto& [k, secs] : rep.checkpoints) {
    w.BeginObject();
    w.KV("k", static_cast<uint64_t>(k));
    w.KV("seconds", secs);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();  // timings
  w.EndObject();
  w.Finish();
}

// ---------------------------------------------------------------------------
// Flag parsing
// ---------------------------------------------------------------------------

bool ParseSize(const std::string& s, size_t* out) {
  // Digits only: strtoull would silently wrap "-3" to a huge value.
  if (s.empty() ||
      !std::all_of(s.begin(), s.end(),
                   [](unsigned char c) { return std::isdigit(c); })) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

const char* UsageText() {
  return
      "anyk " ANYK_VERSION
      " - ranked enumeration of conjunctive-query answers (any-k)\n"
      "\n"
      "Usage:\n"
      "  anyk --relation NAME=FILE.csv [--relation ...] --query SQL "
      "[options]\n"
      "\n"
      "Query:\n"
      "  --query SQL           SQL in the paper dialect (see docs/CLI.md):\n"
      "                        SELECT */cols FROM R [alias], ... WHERE\n"
      "                        a.A2 = b.A1 [AND ...] ORDER BY WEIGHT "
      "[ASC|DESC] [LIMIT k]\n"
      "  --query-file FILE     read the SQL text from FILE\n"
      "  --algorithm NAME      recursive | take2 | lazy (default) | eager | "
      "all | batch\n"
      "                        | auto (cost-based planner picks strategy,\n"
      "                        heap arity and join-tree orientation; see\n"
      "                        docs/PLANNER.md)\n"
      "  --explain             print the EXPLAIN block (plan shape + "
      "planner\n"
      "                        decision) with the report\n"
      "  --dioid NAME          min-sum | max-sum | min-max | max-times\n"
      "                        (default: min-sum for ASC, max-sum for DESC)\n"
      "  --k N                 top-k budget (N >= 1): propagated to the "
      "enumerators\n"
      "                        (O(k) candidate heaps, batch partial sort) "
      "and stops\n"
      "                        the drain after N answers (overrides the SQL "
      "LIMIT;\n"
      "                        omit --k to enumerate everything)\n"
      "\n"
      "Concurrency (see docs/CLI.md, docs/ARCHITECTURE.md 'Threading "
      "model'):\n"
      "  --threads N           preprocessing workers: parallel CSV loading "
      "and\n"
      "                        parallel stage-graph builds (default 1)\n"
      "  --sessions N          drain the prepared query with N concurrent\n"
      "                        sessions; implies --no-results and reports "
      "per-\n"
      "                        session TTL + aggregate answers/sec "
      "(default 1)\n"
      "  --shards S            hash-partition the data into S shards, "
      "prepare S\n"
      "                        per-shard pipelines in parallel (uses "
      "--threads\n"
      "                        workers) and merge their ranked streams per\n"
      "                        session; with --threads > 1 each shard "
      "session\n"
      "                        drains on its own worker (default 1 = "
      "unsharded;\n"
      "                        docs/ARCHITECTURE.md 'Sharding')\n"
      "  --kernels NAME        bind-kernel flavor: auto (default; honors "
      "the\n"
      "                        ANYK_KERNELS env), scalar, or unrolled — "
      "same\n"
      "                        output either way (docs/ARCHITECTURE.md, "
      "'Memory\n"
      "                        layout')\n"
      "\n"
      "CSV loading (applies to every --relation):\n"
      "  --delimiter C         field delimiter (default ',')\n"
      "  --header              skip the first line of each file\n"
      "  --weight-column SPEC  1-based weight column, 'last' (default) or "
      "'none'\n"
      "  --row-limit N         load at most N rows per relation (0 = all)\n"
      "\n"
      "Output:\n"
      "  --format text|json    default text; the JSON schema is documented "
      "in docs/CLI.md\n"
      "  --output FILE         write the report to FILE instead of stdout\n"
      "  --no-results          suppress per-answer rows, report timings "
      "only\n"
      "  --checkpoints LIST    comma-separated TT(k) checkpoints (default "
      "1,2,5,10,20,...)\n"
      "\n"
      "  --help                show this help\n"
      "  --version             print version and exit\n"
      "\n"
      "Exit codes: 0 success, 1 runtime error (bad CSV/SQL/data), 2 usage "
      "error.\n";
}

bool ParseCliArgs(int argc, char** argv, CliOptions* opt, std::string* error) {
  opt->csv.weight_last = true;  // CLI default: last column is the weight
  std::vector<std::string> args(argv + 1, argv + argc);
  auto value_of = [&](size_t* i, const std::string& flag,
                      std::string* out) -> bool {
    const std::string& a = args[*i];
    const std::string eq = flag + "=";
    if (a.compare(0, eq.size(), eq) == 0) {
      *out = a.substr(eq.size());
      return true;
    }
    if (a == flag) {
      if (*i + 1 >= args.size()) {
        *error = "missing value for " + flag;
        return false;
      }
      *out = args[++*i];
      return true;
    }
    *error = "internal flag mismatch for " + flag;
    return false;
  };
  auto is_flag = [&](const std::string& a, const std::string& flag) {
    return a == flag || a.compare(0, flag.size() + 1, flag + "=") == 0;
  };

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    std::string v;
    if (a == "--help" || a == "-h") {
      opt->show_help = true;
    } else if (a == "--version") {
      opt->show_version = true;
    } else if (a == "--header") {
      opt->csv.has_header = true;
    } else if (a == "--no-results") {
      opt->print_results = false;
    } else if (a == "--explain") {
      opt->explain = true;
    } else if (is_flag(a, "--relation")) {
      if (!value_of(&i, "--relation", &v)) return false;
      const size_t eq = v.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= v.size()) {
        *error = "--relation expects NAME=FILE.csv, got '" + v + "'";
        return false;
      }
      opt->relations.push_back({v.substr(0, eq), v.substr(eq + 1)});
    } else if (is_flag(a, "--query")) {
      if (!value_of(&i, "--query", &v)) return false;
      opt->query = v;
    } else if (is_flag(a, "--query-file")) {
      if (!value_of(&i, "--query-file", &v)) return false;
      std::ifstream in(v);
      if (!in.good()) {
        *error = "cannot open query file " + v;
        return false;
      }
      std::ostringstream text;
      text << in.rdbuf();
      opt->query = text.str();
    } else if (is_flag(a, "--algorithm")) {
      if (!value_of(&i, "--algorithm", &v)) return false;
      if (!AlgorithmFromName(v)) {
        *error = "unknown algorithm '" + v +
                 "' (expected recursive|take2|lazy|eager|all|batch|auto)";
        return false;
      }
      opt->algorithm = v;
    } else if (is_flag(a, "--dioid")) {
      if (!value_of(&i, "--dioid", &v)) return false;
      if (v != "min-sum" && v != "max-sum" && v != "min-max" &&
          v != "max-times") {
        *error = "unknown dioid '" + v +
                 "' (expected min-sum|max-sum|min-max|max-times)";
        return false;
      }
      opt->dioid = v;
    } else if (is_flag(a, "--k")) {
      if (!value_of(&i, "--k", &v)) return false;
      // 0 is rejected, not passed through: internally k_budget == 0 means
      // "unbounded" (see EnumOptions), so `--k 0` would silently drain
      // everything instead of producing nothing.
      if (!ParseSize(v, &opt->k) || opt->k == 0) {
        *error = "--k expects a positive integer, got '" + v +
                 "' (omit --k to enumerate everything)";
        return false;
      }
      opt->has_k = true;
    } else if (is_flag(a, "--format")) {
      if (!value_of(&i, "--format", &v)) return false;
      if (v != "text" && v != "json") {
        *error = "unknown format '" + v + "' (expected text|json)";
        return false;
      }
      opt->format = v;
    } else if (is_flag(a, "--output")) {
      if (!value_of(&i, "--output", &v)) return false;
      opt->output_path = v;
    } else if (is_flag(a, "--checkpoints")) {
      if (!value_of(&i, "--checkpoints", &v)) return false;
      std::istringstream in(v);
      std::string item;
      while (std::getline(in, item, ',')) {
        size_t k = 0;
        if (!ParseSize(item, &k) || k == 0) {
          *error = "--checkpoints expects positive integers, got '" + item +
                   "'";
          return false;
        }
        opt->checkpoints.push_back(k);
      }
      std::sort(opt->checkpoints.begin(), opt->checkpoints.end());
      opt->checkpoints.erase(
          std::unique(opt->checkpoints.begin(), opt->checkpoints.end()),
          opt->checkpoints.end());
    } else if (is_flag(a, "--delimiter")) {
      if (!value_of(&i, "--delimiter", &v)) return false;
      if (v.size() != 1) {
        *error = "--delimiter expects a single character, got '" + v + "'";
        return false;
      }
      opt->csv.delimiter = v[0];
    } else if (is_flag(a, "--weight-column")) {
      if (!value_of(&i, "--weight-column", &v)) return false;
      if (v == "last") {
        opt->csv.weight_last = true;
        opt->csv.weight_column = -1;
      } else if (v == "none") {
        opt->csv.weight_last = false;
        opt->csv.weight_column = -1;
      } else {
        size_t col = 0;
        if (!ParseSize(v, &col) || col == 0) {
          *error = "--weight-column expects a 1-based index, 'last' or "
                   "'none', got '" + v + "'";
          return false;
        }
        opt->csv.weight_last = false;
        opt->csv.weight_column = static_cast<int>(col) - 1;
      }
    } else if (is_flag(a, "--threads")) {
      if (!value_of(&i, "--threads", &v)) return false;
      if (!ParseSize(v, &opt->threads) || opt->threads == 0) {
        *error = "--threads expects a positive integer, got '" + v + "'";
        return false;
      }
    } else if (is_flag(a, "--sessions")) {
      if (!value_of(&i, "--sessions", &v)) return false;
      if (!ParseSize(v, &opt->sessions) || opt->sessions == 0) {
        *error = "--sessions expects a positive integer, got '" + v + "'";
        return false;
      }
    } else if (is_flag(a, "--shards")) {
      if (!value_of(&i, "--shards", &v)) return false;
      if (!ParseSize(v, &opt->shards) || opt->shards == 0) {
        *error = "--shards expects a positive integer, got '" + v + "'";
        return false;
      }
    } else if (is_flag(a, "--kernels")) {
      if (!value_of(&i, "--kernels", &v)) return false;
      KernelKind kk;
      if (!ParseKernelKind(v, &kk)) {
        *error = "--kernels expects auto, scalar or unrolled, got '" + v +
                 "'";
        return false;
      }
      opt->kernels = v;
    } else if (is_flag(a, "--row-limit")) {
      if (!value_of(&i, "--row-limit", &v)) return false;
      if (!ParseSize(v, &opt->csv.limit)) {
        *error = "--row-limit expects a non-negative integer, got '" + v +
                 "'";
        return false;
      }
    } else {
      *error = "unknown flag '" + a + "'";
      return false;
    }
  }

  if (opt->show_help || opt->show_version) return true;
  if (opt->relations.empty()) {
    *error = "no relations given; pass at least one --relation NAME=FILE.csv";
    return false;
  }
  if (opt->query.empty()) {
    *error = "no query given; pass --query SQL or --query-file FILE";
    return false;
  }
  return true;
}

int RunCli(const CliOptions& opt) {
  // Output stream: stdout or --output.
  std::ofstream file_out;
  if (!opt.output_path.empty()) {
    file_out.open(opt.output_path);
    ANYK_CHECK(file_out.good()) << "cannot write " << opt.output_path;
  }
  std::ostream& out = opt.output_path.empty() ? std::cout : file_out;

  // Preprocessing worker pool (--threads); null-equivalent when 1.
  ThreadPool pool(opt.threads);

  // Load relations — in parallel with --threads > 1: each worker parses its
  // file into a private shard database (CsvLoader CHECK failures throw and
  // ParallelFor rethrows the first one here), then the shards merge
  // serially in declaration order so diagnostics stay deterministic.
  Database db;
  std::vector<LoadedRelation> rels;
  {
    std::vector<Database> shards(opt.relations.size());
    ParallelFor(&pool, opt.relations.size(), [&](size_t i) {
      LoadRelationCsv(&shards[i], opt.relations[i].name,
                      opt.relations[i].path, opt.csv);
    });
    for (size_t i = 0; i < opt.relations.size(); ++i) {
      const Relation& rel = db.AddRelation(
          std::move(shards[i].GetMutable(opt.relations[i].name)));
      rels.push_back({opt.relations[i].name, opt.relations[i].path,
                      rel.NumRows(), rel.arity()});
    }
  }

  // Parse the SQL against the database (arities become known).
  SqlStatement stmt = ParseSql(opt.query, &db);
  const size_t limit = opt.has_k ? opt.k : stmt.limit;
  const Algorithm algo = *AlgorithmFromName(opt.algorithm);
  std::string dioid = opt.dioid;
  if (dioid.empty()) dioid = stmt.ascending ? "min-sum" : "max-sum";

  const std::vector<size_t> cps =
      opt.checkpoints.empty()
          ? GeometricCheckpoints(limit == 0 ? SIZE_MAX : limit)
          : opt.checkpoints;

  const bool text = opt.format == "text";
  if (text) {
    out << "# anyk " << ANYK_VERSION << "\n";
    for (const LoadedRelation& r : rels) {
      out << "# loaded " << r.name << ": " << r.path << " (rows=" << r.rows
          << ", arity=" << r.arity << ")\n";
    }
    out << "# algorithm=" << AlgorithmName(algo) << " dioid=" << dioid
        << " limit=" << limit << " threads=" << opt.threads << " sessions="
        << opt.sessions << " shards=" << opt.shards << "\n";
    out << "# columns: k,weight";
    for (const std::string& c : ColumnNames(stmt)) out << "," << c;
    out << "\n";
  }

  // Text mode streams answers as they are produced; JSON collects them.
  // Concurrent-drain mode never streams per-answer rows (N interleaved
  // ranked streams are noise; the mode measures serving throughput).
  const bool print_results = opt.print_results && opt.sessions <= 1;
  std::vector<CliResult> results;
  char weight_buf[32];
  RowSink sink;
  if (print_results && text) {
    sink = [&](size_t k, double weight, const std::vector<Value>& values) {
      std::snprintf(weight_buf, sizeof(weight_buf), "%.6g", weight);
      out << "RESULT," << k << "," << weight_buf;
      for (Value v : values) out << "," << v;
      out << "\n";
    };
  } else if (print_results) {
    sink = [&](size_t, double weight, const std::vector<Value>& values) {
      results.push_back({weight, values});
    };
  }

  KernelKind kernels = KernelKind::kAuto;
  ParseKernelKind(opt.kernels, &kernels);  // validated at flag-parse time

  // With both worker threads and shards, the merged drain also runs one
  // worker per shard session (same output bytes as the serial merge).
  const bool parallel_drain = opt.threads > 1 && opt.shards > 1;

  RunReport rep;
  if (dioid == "min-sum") {
    rep = RunRanked<TropicalDioid>(db, stmt, algo, limit, cps, sink, &pool,
                                   opt.sessions, opt.shards, parallel_drain,
                                   opt.explain, kernels);
  } else if (dioid == "max-sum") {
    rep = RunRanked<MaxPlusDioid>(db, stmt, algo, limit, cps, sink, &pool,
                                  opt.sessions, opt.shards, parallel_drain,
                                  opt.explain, kernels);
  } else if (dioid == "min-max") {
    rep = RunRanked<MinMaxDioid>(db, stmt, algo, limit, cps, sink, &pool,
                                 opt.sessions, opt.shards, parallel_drain,
                                 opt.explain, kernels);
  } else {
    rep = RunRanked<MaxTimesDioid>(db, stmt, algo, limit, cps, sink, &pool,
                                   opt.sessions, opt.shards, parallel_drain,
                                   opt.explain, kernels);
  }

  if (text) {
    out << "# plan=" << rep.plan << "\n";
    out << "# planner: " << rep.planner_summary << "\n";
    out << "# resolved_algorithm=" << rep.resolved_algorithm << "\n";
    if (!rep.explain_text.empty()) WriteCommented(out, rep.explain_text);
    WriteTextReport(out, rep);
  } else {
    WriteJsonReport(out, opt, print_results, rels, stmt, AlgorithmName(algo),
                    dioid, limit, results, rep);
  }
  return 0;
}

int CliMain(int argc, char** argv) {
  CliOptions opt;
  std::string error;
  if (!ParseCliArgs(argc, argv, &opt, &error)) {
    std::fprintf(stderr, "anyk: %s\n(usage: try 'anyk --help')\n",
                 error.c_str());
    return 2;
  }
  if (opt.show_help) {
    std::fputs(UsageText(), stdout);
    return 0;
  }
  if (opt.show_version) {
    std::printf("anyk %s\n", ANYK_VERSION);
    return 0;
  }
  SetCheckFailureHandler(&ThrowingCheckHandler);
  try {
    return RunCli(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "anyk: error: %s\n", e.what());
    return 1;
  }
}

}  // namespace cli
}  // namespace anyk
