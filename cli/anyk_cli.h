// The `anyk` command-line driver: load CSV relations into a Database, parse
// the paper-dialect SQL (src/query/sql.h), pick an any-k algorithm
// (Eager/Lazy/All/Take2/Recursive/Batch, or `auto` for the cost-based
// planner) and a selective dioid, and stream ranked answers with TTF /
// TT(k) / TTL timings in text or JSON. --explain prints the plan and the
// planner decision (src/anyk/explain.h) before the timings.
//
// Split from main() so the option parser and runner are linkable from tests;
// the binary itself is cli/anyk_main.cc.

#ifndef ANYK_CLI_ANYK_CLI_H_
#define ANYK_CLI_ANYK_CLI_H_

#include <cstddef>
#include <string>
#include <vector>

#include "storage/csv.h"

namespace anyk {
namespace cli {

struct RelationSpec {
  std::string name;
  std::string path;
};

struct CliOptions {
  std::vector<RelationSpec> relations;
  std::string query;            // SQL text (from --query or --query-file)
  std::string algorithm = "lazy";
  std::string dioid;            // empty: derived from ORDER BY direction
  bool has_k = false;
  size_t k = 0;                 // with has_k: overrides the SQL LIMIT (0 = all)
  std::string format = "text";  // "text" | "json"
  std::string output_path;      // empty = stdout
  bool print_results = true;
  std::vector<size_t> checkpoints;  // empty = geometric 1,2,5,10,...
  CsvOptions csv;               // --delimiter / --header / --weight-column
  // Preprocessing worker threads (--threads): parallel per-relation CSV
  // loading plus parallel stage-graph builds. 1 = fully serial.
  size_t threads = 1;
  // Concurrent enumeration sessions (--sessions): N threads each drain an
  // independent EnumerationSession of the same PreparedQuery; implies
  // --no-results and reports per-session TTL + aggregate answers/sec.
  size_t sessions = 1;
  // Bind-kernel flavor (--kernels): "auto" (default; honors the
  // ANYK_KERNELS env override), "scalar" or "unrolled". Reaches the stage
  // graph build and the batched NextBatch binds via EnumOptions::kernels.
  std::string kernels = "auto";
  // Intra-query data shards (--shards): hash-partition the relations on the
  // query's partition variable and prepare S independent per-shard
  // pipelines, merged per session through a ranked union
  // (src/anyk/sharded_query.h). 1 = unsharded passthrough.
  size_t shards = 1;
  // Print the EXPLAIN block (plan shape + planner decision) before running.
  bool explain = false;
  bool show_help = false;
  bool show_version = false;
};

/// Full --help text.
const char* UsageText();

/// Parse argv into `opt`. Returns false (with `error` set) on usage errors.
bool ParseCliArgs(int argc, char** argv, CliOptions* opt, std::string* error);

/// Load, plan, enumerate, report. Assumes a throwing check handler is
/// installed; propagates CheckError on runtime failures. Returns exit code 0.
int RunCli(const CliOptions& opt);

/// The complete driver: parse flags, install the throwing check handler, run,
/// and map failures to exit codes (0 success, 1 runtime error, 2 usage).
int CliMain(int argc, char** argv);

}  // namespace cli
}  // namespace anyk

#endif  // ANYK_CLI_ANYK_CLI_H_
