// anykd — daemon entry point: load the database once, then serve ranked
// enumeration over HTTP until SIGINT/SIGTERM (see docs/SERVER.md and
// scripts/anyk_client.py for the matching client).

#include <charconv>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "server/server.h"
#include "storage/csv.h"
#include "storage/database.h"
#include "util/logging.h"
#include "util/thread_pool.h"

#ifndef ANYK_VERSION
#define ANYK_VERSION "dev"
#endif

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void OnSignal(int) { g_stop_requested = 1; }

const char* UsageText() {
  return
      "anykd " ANYK_VERSION " - any-k ranked-enumeration server\n"
      "\n"
      "Usage:\n"
      "  anykd --relation NAME=FILE.csv [--relation ...] [options]\n"
      "\n"
      "Serving (defaults in parentheses; protocol in docs/SERVER.md):\n"
      "  --port N              listen port on 127.0.0.1 (0 = ephemeral; the\n"
      "                        bound port is printed on startup)\n"
      "  --workers N           connection worker threads (4)\n"
      "  --threads N           preprocessing workers per preparation (1)\n"
      "  --shards S            hash-partition every prepared query's data "
      "into S\n"
      "                        per-shard pipelines merged per cursor (1 =\n"
      "                        unsharded; also a prepared-query cache-key\n"
      "                        component — docs/SERVER.md)\n"
      "  --cache-capacity N    prepared queries kept, LRU beyond it (16)\n"
      "  --max-sessions N      open cursors / concurrent first pages (64)\n"
      "  --max-page-k N        largest accepted k= page size (10000)\n"
      "  --default-page-k N    page size when k= is absent (100)\n"
      "  --cursor-ttl SECONDS  idle cursors reclaimed after this (300; 0 =\n"
      "                        never)\n"
      "  --qps N               token-bucket requests/second (0 = unlimited)\n"
      "\n"
      "CSV loading (applies to every --relation):\n"
      "  --delimiter C         field delimiter (default ',')\n"
      "  --header              skip the first line of each file\n"
      "  --weight-column SPEC  1-based weight column, 'last' (default) or "
      "'none'\n"
      "  --row-limit N         load at most N rows per relation (0 = all)\n"
      "\n"
      "  --help                show this help\n"
      "  --version             print version and exit\n"
      "\n"
      "Exit codes: 0 clean shutdown, 1 runtime error, 2 usage error.\n";
}

bool ParseSize(const std::string& s, size_t* out) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  *out = static_cast<size_t>(std::strtoull(s.c_str(), nullptr, 10));
  return true;
}

// from_chars, not strtod: strtod honors the process locale, so a daemon
// started under e.g. LC_NUMERIC=de_DE would silently misread "--qps 0.5".
// Same policy as the CSV weight parser (src/storage/csv.cc).
bool ParseNonNegativeDouble(const std::string& s, double* out) {
  const char* begin = s.c_str();
  const char* end = begin + s.size();
  double v = 0;
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end || v < 0) return false;
  *out = v;
  return true;
}

struct DaemonOptions {
  std::vector<std::pair<std::string, std::string>> relations;
  anyk::CsvOptions csv;
  anyk::server::ServerOptions server;
  bool show_help = false;
  bool show_version = false;
};

bool ParseArgs(int argc, char** argv, DaemonOptions* opt, std::string* error) {
  opt->csv.weight_last = true;
  std::vector<std::string> args(argv + 1, argv + argc);
  auto value_of = [&](size_t* i, const std::string& flag,
                      std::string* out) -> bool {
    const std::string& a = args[*i];
    const std::string eq = flag + "=";
    if (a.compare(0, eq.size(), eq) == 0) {
      *out = a.substr(eq.size());
      return true;
    }
    if (*i + 1 >= args.size()) {
      *error = "missing value for " + flag;
      return false;
    }
    *out = args[++*i];
    return true;
  };
  auto is_flag = [&](const std::string& a, const std::string& flag) {
    return a == flag || a.compare(0, flag.size() + 1, flag + "=") == 0;
  };
  auto size_flag = [&](size_t* i, const std::string& flag, size_t* out) {
    std::string v;
    if (!value_of(i, flag, &v)) return false;
    if (!ParseSize(v, out)) {
      *error = flag + " expects a non-negative integer, got '" + v + "'";
      return false;
    }
    return true;
  };

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    std::string v;
    size_t n = 0;
    if (a == "--help" || a == "-h") {
      opt->show_help = true;
    } else if (a == "--version") {
      opt->show_version = true;
    } else if (a == "--header") {
      opt->csv.has_header = true;
    } else if (is_flag(a, "--relation")) {
      if (!value_of(&i, "--relation", &v)) return false;
      const size_t eq = v.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= v.size()) {
        *error = "--relation expects NAME=FILE.csv, got '" + v + "'";
        return false;
      }
      opt->relations.push_back({v.substr(0, eq), v.substr(eq + 1)});
    } else if (is_flag(a, "--port")) {
      if (!size_flag(&i, "--port", &n)) return false;
      if (n > 65535) {
        *error = "--port expects 0..65535";
        return false;
      }
      opt->server.port = static_cast<int>(n);
    } else if (is_flag(a, "--workers")) {
      if (!size_flag(&i, "--workers", &n) || n == 0) {
        if (error->empty()) *error = "--workers expects a positive integer";
        return false;
      }
      opt->server.workers = n;
    } else if (is_flag(a, "--threads")) {
      if (!size_flag(&i, "--threads", &n) || n == 0) {
        if (error->empty()) *error = "--threads expects a positive integer";
        return false;
      }
      opt->server.prepare_threads = n;
    } else if (is_flag(a, "--shards")) {
      if (!size_flag(&i, "--shards", &n) || n == 0) {
        if (error->empty()) *error = "--shards expects a positive integer";
        return false;
      }
      opt->server.shards = n;
    } else if (is_flag(a, "--cache-capacity")) {
      if (!size_flag(&i, "--cache-capacity", &n) || n == 0) {
        if (error->empty()) {
          *error = "--cache-capacity expects a positive integer";
        }
        return false;
      }
      opt->server.cache_capacity = n;
    } else if (is_flag(a, "--max-sessions")) {
      if (!size_flag(&i, "--max-sessions", &n) || n == 0) {
        if (error->empty()) *error = "--max-sessions expects a positive integer";
        return false;
      }
      opt->server.max_sessions = n;
    } else if (is_flag(a, "--max-page-k")) {
      if (!size_flag(&i, "--max-page-k", &n) || n == 0) {
        if (error->empty()) *error = "--max-page-k expects a positive integer";
        return false;
      }
      opt->server.max_page_k = n;
    } else if (is_flag(a, "--default-page-k")) {
      if (!size_flag(&i, "--default-page-k", &n) || n == 0) {
        if (error->empty()) {
          *error = "--default-page-k expects a positive integer";
        }
        return false;
      }
      opt->server.default_page_k = n;
    } else if (is_flag(a, "--cursor-ttl")) {
      if (!value_of(&i, "--cursor-ttl", &v)) return false;
      double secs = 0;
      if (!ParseNonNegativeDouble(v, &secs)) {
        *error = "--cursor-ttl expects seconds >= 0, got '" + v + "'";
        return false;
      }
      opt->server.cursor_ttl_seconds = secs;
    } else if (is_flag(a, "--qps")) {
      if (!value_of(&i, "--qps", &v)) return false;
      double qps = 0;
      if (!ParseNonNegativeDouble(v, &qps)) {
        *error = "--qps expects a rate >= 0, got '" + v + "'";
        return false;
      }
      opt->server.qps = qps;
    } else if (is_flag(a, "--delimiter")) {
      if (!value_of(&i, "--delimiter", &v)) return false;
      if (v.size() != 1) {
        *error = "--delimiter expects a single character, got '" + v + "'";
        return false;
      }
      opt->csv.delimiter = v[0];
    } else if (is_flag(a, "--weight-column")) {
      if (!value_of(&i, "--weight-column", &v)) return false;
      if (v == "last") {
        opt->csv.weight_last = true;
        opt->csv.weight_column = -1;
      } else if (v == "none") {
        opt->csv.weight_last = false;
        opt->csv.weight_column = -1;
      } else {
        size_t col = 0;
        if (!ParseSize(v, &col) || col == 0) {
          *error = "--weight-column expects a 1-based index, 'last' or "
                   "'none', got '" + v + "'";
          return false;
        }
        opt->csv.weight_last = false;
        opt->csv.weight_column = static_cast<int>(col) - 1;
      }
    } else if (is_flag(a, "--row-limit")) {
      if (!size_flag(&i, "--row-limit", &opt->csv.limit)) return false;
    } else {
      *error = "unknown flag '" + a + "'";
      return false;
    }
  }

  if (opt->show_help || opt->show_version) return true;
  if (opt->relations.empty()) {
    *error = "no relations given; pass at least one --relation NAME=FILE.csv";
    return false;
  }
  return true;
}

int RunDaemon(const DaemonOptions& opt) {
  // Parallel shard load, merged in declaration order — same recipe as the
  // CLI so both tools agree on what a dataset means.
  anyk::Database db;
  {
    anyk::ThreadPool pool(opt.server.prepare_threads);
    std::vector<anyk::Database> shards(opt.relations.size());
    anyk::ParallelFor(&pool, opt.relations.size(), [&](size_t i) {
      anyk::LoadRelationCsv(&shards[i], opt.relations[i].first,
                            opt.relations[i].second, opt.csv);
    });
    for (size_t i = 0; i < opt.relations.size(); ++i) {
      const anyk::Relation& rel = db.AddRelation(
          std::move(shards[i].GetMutable(opt.relations[i].first)));
      std::fprintf(stderr, "anykd: loaded %s: %s (rows=%zu, arity=%zu)\n",
                   opt.relations[i].first.c_str(),
                   opt.relations[i].second.c_str(), rel.NumRows(),
                   rel.arity());
    }
  }

  anyk::server::AnykServer srv(std::move(db), opt.server);
  srv.Start();
  // The startup line is the daemon's readiness signal: tests and the CI
  // smoke job block on it to learn the (possibly ephemeral) port.
  std::printf("anykd listening on %d\n", srv.bound_port());
  std::fflush(stdout);

  std::signal(SIGINT, &OnSignal);
  std::signal(SIGTERM, &OnSignal);
  while (!g_stop_requested) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::fprintf(stderr, "anykd: shutting down\n");
  srv.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonOptions opt;
  std::string error;
  if (!ParseArgs(argc, argv, &opt, &error)) {
    std::fprintf(stderr, "anykd: %s\n(usage: try 'anykd --help')\n",
                 error.c_str());
    return 2;
  }
  if (opt.show_help) {
    std::fputs(UsageText(), stdout);
    return 0;
  }
  if (opt.show_version) {
    std::printf("anykd %s\n", ANYK_VERSION);
    return 0;
  }
  anyk::SetCheckFailureHandler(&anyk::ThrowingCheckHandler);
  try {
    return RunDaemon(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "anykd: error: %s\n", e.what());
    return 1;
  }
}
