// Entry point of the `anyk` binary; all logic lives in anyk_cli.cc so tests
// can link the parser and runner directly.

#include "anyk_cli.h"

int main(int argc, char** argv) { return anyk::cli::CliMain(argc, argv); }
