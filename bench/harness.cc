#include "harness.h"

#include <cstddef>
#include <string>
#include <vector>

namespace anyk {
namespace bench {

std::vector<size_t> GeometricCheckpoints(size_t max_k) {
  std::vector<size_t> cps;
  size_t decade = 1;
  while (decade <= max_k && decade < (size_t{1} << 62)) {
    for (size_t mult : {1, 2, 5}) {
      const size_t k = decade * mult;
      if (k <= max_k) cps.push_back(k);
    }
    if (decade > max_k / 10) break;
    decade *= 10;
  }
  return cps;
}

void PrintHeader() {
  std::printf("RESULT,figure,query,dataset,n,algorithm,k,seconds\n");
}

void PrintRow(const std::string& figure, const std::string& query,
              const std::string& dataset, size_t n,
              const std::string& algorithm, size_t k, double seconds) {
  std::printf("RESULT,%s,%s,%s,%zu,%s,%zu,%.6f\n", figure.c_str(),
              query.c_str(), dataset.c_str(), n, algorithm.c_str(), k,
              seconds);
  std::fflush(stdout);
}

void PaperNote(const std::string& figure, const std::string& note) {
  std::printf("# paper %s: %s\n", figure.c_str(), note.c_str());
}

void SectionNote(const std::string& text) {
  std::printf("#\n# ==== %s ====\n", text.c_str());
}

}  // namespace bench
}  // namespace anyk
