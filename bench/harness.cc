#include "harness.h"

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/logging.h"

namespace anyk {
namespace bench {

namespace {
// v2 added the memory columns (allocs, peak_rss_kb); v3 adds the
// concurrency columns (threads, answers_per_sec) — serial records carry
// threads=1 and the perf gate ignores everything else.
constexpr int kSchemaVersion = 3;
}  // namespace

Reporter& Reporter::Get() {
  static Reporter reporter;
  return reporter;
}

void Reporter::Init(int argc, char** argv, const std::string& bench_name) {
  name_ = bench_name;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke_ = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path_ = arg.substr(7);
    } else if (arg.rfind("--json-dir=", 0) == 0) {
      json_path_ = arg.substr(11) + "/BENCH_" + name_ + ".json";
    }
    // Unknown flags are deliberately ignored (wrappers pass extras through).
  }
}

void Reporter::Row(const std::string& figure, const std::string& query,
                   const std::string& dataset, size_t n,
                   const std::string& algorithm, size_t k, double seconds,
                   size_t allocs, size_t peak_rss_kb, size_t threads,
                   double answers_per_sec) {
  std::printf("RESULT,%s,%s,%s,%zu,%s,%zu,%.6f,%zu,%zu,%zu,%.1f\n",
              figure.c_str(), query.c_str(), dataset.c_str(), n,
              algorithm.c_str(), k, seconds, allocs, peak_rss_kb, threads,
              answers_per_sec);
  std::fflush(stdout);
  records_.push_back({figure, query, dataset, algorithm, n, k, seconds,
                      allocs, peak_rss_kb, threads, answers_per_sec});
}

void Reporter::Note(const std::string& figure, const std::string& note) {
  std::printf("# paper %s: %s\n", figure.c_str(), note.c_str());
  notes_.emplace_back(figure, note);
}

void Reporter::Section(const std::string& text) {
  std::printf("#\n# ==== %s ====\n", text.c_str());
}

void Reporter::Flush() {
  if (flushed_ || json_path_.empty()) return;
  flushed_ = true;
  std::ofstream out(json_path_);
  ANYK_CHECK(out.good()) << "cannot write " << json_path_;
  JsonWriter w(out);
  w.BeginObject();
  w.KV("schema_version", static_cast<int64_t>(kSchemaVersion));
  w.KV("bench", name_);
  w.KV("smoke", smoke_);
  w.Key("records").BeginArray();
  for (const BenchRecord& r : records_) {
    w.BeginObject();
    w.KV("figure", r.figure);
    w.KV("query", r.query);
    w.KV("dataset", r.dataset);
    w.KV("n", static_cast<uint64_t>(r.n));
    w.KV("algorithm", r.algorithm);
    w.KV("k", static_cast<uint64_t>(r.k));
    w.KV("seconds", r.seconds);
    w.KV("allocs", static_cast<uint64_t>(r.allocs));
    w.KV("peak_rss_kb", static_cast<uint64_t>(r.peak_rss_kb));
    w.KV("threads", static_cast<uint64_t>(r.threads));
    w.KV("answers_per_sec", r.answers_per_sec);
    w.EndObject();
  }
  w.EndArray();
  w.Key("paper_notes").BeginArray();
  for (const auto& [figure, note] : notes_) {
    w.BeginObject();
    w.KV("figure", figure);
    w.KV("note", note);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Finish();
  std::printf("# wrote %s (%zu records)\n", json_path_.c_str(),
              records_.size());
}

void InitBench(int argc, char** argv, const std::string& bench_name) {
  Reporter::Get().Init(argc, argv, bench_name);
  std::atexit([] { Reporter::Get().Flush(); });
}

bool SmokeMode() { return Reporter::Get().smoke(); }

void PrintHeader() {
  std::printf(
      "RESULT,figure,query,dataset,n,algorithm,k,seconds,allocs,"
      "peak_rss_kb,threads,answers_per_sec\n");
}

void PrintRow(const std::string& figure, const std::string& query,
              const std::string& dataset, size_t n,
              const std::string& algorithm, size_t k, double seconds,
              size_t allocs, size_t peak_rss_kb, size_t threads,
              double answers_per_sec) {
  Reporter::Get().Row(figure, query, dataset, n, algorithm, k, seconds,
                      allocs, peak_rss_kb, threads, answers_per_sec);
}

void PaperNote(const std::string& figure, const std::string& note) {
  Reporter::Get().Note(figure, note);
}

void SectionNote(const std::string& text) {
  Reporter::Get().Section(text);
}

}  // namespace bench
}  // namespace anyk
