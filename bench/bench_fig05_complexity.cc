// Figure 5 (complexity table): empirical validation of the asymptotic rows.
//  * TTF scaling: for the any-k algorithms TT(1) grows ~linearly in n
//    (Eager included here because its choice sets are lazily initialized, as
//    in the paper's implementation), while Batch's TT(1) tracks the full
//    output size.
//  * Delay scaling: time per result between k-checkpoints stays near-flat
//    (logarithmic) for the strict variants, grows for All (O(l*n) inserts),
//    and is O(l log n) for Recursive.
//  * MEM(k): candidate-set growth per result (measured via counters in the
//    invariant tests; here we report times).

#include <cstddef>
#include <vector>

#include "bench_common.h"
#include "query/cq.h"
#include "workload/generators.h"

using namespace anyk;
using namespace anyk::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig05_complexity");
  PrintHeader();
  PaperNote("fig5",
            "TTF: O(ln) for all any-k (Eager O(ln log n) if pre-sorted); "
            "Delay: Take2/Eager O(log k + l), Lazy + log n, All + ln, "
            "Recursive O(l log n); Batch TTF = |out|(log|out| + l)");

  // TTF vs n (k = 1).
  SectionNote("TT(1) scaling with n, 4-path");
  const std::vector<size_t> ttf_ns =
      SmokeMode() ? std::vector<size_t>{2000, 4000, 8000}
                  : std::vector<size_t>{25000, 50000, 100000, 200000, 400000};
  for (size_t n : ttf_ns) {
    Database db = MakePathDatabase(n, 4, 500 + n);
    ConjunctiveQuery q = ConjunctiveQuery::Path(4);
    for (Algorithm algo : AllAnyKAlgorithms()) {
      RunAndPrint<TropicalDioid>("fig5-ttf", "4path", "synthetic", n,
                                 AlgorithmName(algo),
                                 MakeFactory<TropicalDioid>(db, q, algo), 1);
    }
  }
  // Batch TT(1) tracks output size — one smaller point for reference.
  const std::vector<size_t> batch_ns =
      SmokeMode() ? std::vector<size_t>{500, 1000}
                  : std::vector<size_t>{5000, 10000, 20000};
  for (size_t n : batch_ns) {
    Database db = MakePathDatabase(n, 4, 500 + n);
    ConjunctiveQuery q = ConjunctiveQuery::Path(4);
    RunAndPrint<TropicalDioid>("fig5-ttf", "4path", "synthetic", n, "Batch",
                               MakeFactory<TropicalDioid>(db, q,
                                                          Algorithm::kBatch),
                               1);
  }

  // Delay vs k: cumulative TT(k) at geometric checkpoints; the per-decade
  // increments expose the delay trend.
  SectionNote("TT(k) growth with k, 4-path n=100000");
  {
    const size_t n = Pick(100000, 4000);
    Database db = MakePathDatabase(n, 4, 555);
    ConjunctiveQuery q = ConjunctiveQuery::Path(4);
    RunAlgorithms("fig5-delay", "4path", "synthetic", n, db, q, Pick(200000, 8000),
                  AllAnyKAlgorithms());
  }

  // Measured worst-case delay between consecutive results (Fig. 5's
  // Delay(k) column): the strict variants and Take2 stay flat; All pays its
  // O(l*n) candidate insertions.
  SectionNote("max inter-result delay over 100k results, 4-path n=100000");
  {
    const size_t n = Pick(100000, 4000);
    Database db = MakePathDatabase(n, 4, 556);
    ConjunctiveQuery q = ConjunctiveQuery::Path(4);
    for (Algorithm algo : AllAnyKAlgorithms()) {
      auto series = MeasureTT<TropicalDioid>(
          MakeFactory<TropicalDioid>(db, q, algo), n, {},
          /*track_delay=*/true);
      PrintRow("fig5-maxdelay", "4path", "synthetic", n, AlgorithmName(algo),
               series.produced, series.max_delay);
    }
  }
  return 0;
}
