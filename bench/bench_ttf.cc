// bench_ttf: preprocessing + time-to-first-result on the figure datasets
// (path, star, cycle), gating the columnar storage conversion (PR-8).
//
// Two kinds of series:
//   * "Engine" — the real pipeline, prepare + first answer per repetition:
//     PreparedQuery construction (stage-graph builds through the column
//     segments and bind kernels) plus one NextBatch. This is the series the
//     perf-regression gate (scripts/bench_compare.py against
//     bench/baselines/BENCH_ttf.json) judges.
//   * "Prefill-columnar" / "Prefill-rowref" — paired replicas of the
//     storage-touching stage-build passes (join-key interning, CSR counting
//     scatter, per-group weight reduction, first-answer chain walk) that
//     differ ONLY in access pattern: column-strided reads through the
//     GatherKernels over Relation's segments, vs interleaved row-major reads
//     over a RowMajorTable snapshot with a per-row materialized Key (the
//     pre-columnar ProjectRow idiom, one heap vector per row). The pair
//     isolates what the layout conversion bought; the paper note pins the
//     expected >=25% TTF win on path and star.
//
// Each record's `seconds` is cumulative over `reps` repetitions (fixed per
// series, so baseline and current runs stay comparable).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "anyk/prepared_query.h"
#include "bench_common.h"
#include "query/cq.h"
#include "storage/flat_index.h"
#include "storage/kernels.h"
#include "storage/row_reference.h"
#include "util/timer.h"
#include "workload/generators.h"

using namespace anyk;
using namespace anyk::bench;

namespace {

using D = TropicalDioid;

struct Shape {
  std::string name;
  Database db;
  ConjunctiveQuery q;
  size_t n;
  bool prefill_pair;  // run the paired layout replicas (binary join chains)
};

// Keep the optimizer honest across repetitions.
volatile double g_sink = 0;

double MeasureEngineTTF(const Database& db, const ConjunctiveQuery& q,
                        size_t reps) {
  double total = 0;
  for (size_t r = 0; r < reps; ++r) {
    Timer timer;
    typename PreparedQuery<D>::Options popts;
    popts.enum_opts.with_witness = false;
    PreparedQuery<D> pq(db, q, popts);
    EnumerationSession<D> sess = pq.NewSession(Algorithm::kLazy,
                                               popts.enum_opts);
    ResultRow<D> row;
    if (sess.NextBatch(&row, 1) == 1) g_sink = g_sink + row.weight;
    total += timer.Seconds();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Paired prefill replicas. Both run the identical algorithm over the chain
// of binary atoms R1(x1,x2), R2(x2,x3), ... (path; star is the same chain
// grouped on column 0): bottom-up, group stage i+1's rows by its join
// column, reduce each group to its best suffix weight, and combine into
// stage i; finally walk the argmin chain for the first answer. The ONLY
// difference is how tuples are read.
// ---------------------------------------------------------------------------

struct PrefillScratch {
  FlatKeyIndex idx;
  std::vector<Value> key_rows;
  std::vector<uint32_t> gid;
  std::vector<uint32_t> counts;
  std::vector<double> group_best;
  std::vector<double> best;
  std::vector<double> next_best;
};

// Column-strided: key matrix prefilled from the column segment via
// spread_to_stride, contiguous interning, weights read off the contiguous
// weight segment.
double PrefillColumnar(const std::vector<const Relation*>& chain,
                       const std::vector<uint32_t>& join_col,
                       const std::vector<uint32_t>& probe_col,
                       const GatherKernels& kx, PrefillScratch* s) {
  Timer timer;
  const size_t stages = chain.size();
  s->best.assign(chain[stages - 1]->NumRows(), 0.0);
  {
    std::span<const double> w = chain[stages - 1]->Weights();
    for (size_t r = 0; r < w.size(); ++r) s->best[r] = w[r];
  }
  for (size_t i = stages - 1; i-- > 0;) {
    const Relation& child = *chain[i + 1];
    const size_t child_rows = child.NumRows();
    // Key-matrix prefill straight off the column segment.
    s->key_rows.resize(child_rows);
    kx.spread_to_stride(child.ColumnData(join_col[i + 1]), child_rows,
                        s->key_rows.data(), 1);
    s->idx.Init(1, child_rows / 4);
    s->gid.resize(child_rows);
    for (size_t r = 0; r < child_rows; ++r) {
      s->gid[r] = s->idx.Intern({s->key_rows.data() + r, 1});
    }
    // Per-group best suffix weight (the CSR reduction).
    s->group_best.assign(s->idx.NumKeys(),
                         std::numeric_limits<double>::infinity());
    for (size_t r = 0; r < child_rows; ++r) {
      s->group_best[s->gid[r]] =
          std::min(s->group_best[s->gid[r]], s->best[r]);
    }
    // Combine into this stage: weight segment + column-segment key probes.
    const Relation& rel = *chain[i];
    const size_t rows = rel.NumRows();
    const Value* probe = rel.ColumnData(probe_col[i]);  // child-facing column
    std::span<const double> w = rel.Weights();
    s->next_best.assign(rows, std::numeric_limits<double>::infinity());
    for (size_t r = 0; r < rows; ++r) {
      const int64_t g = s->idx.Find({probe + r, 1});
      if (g >= 0) s->next_best[r] = w[r] + s->group_best[g];
    }
    s->best.swap(s->next_best);
  }
  double first = std::numeric_limits<double>::infinity();
  for (const double b : s->best) first = std::min(first, b);
  g_sink = g_sink + first;
  return timer.Seconds();
}

// Row-strided: the pre-columnar idiom — interleaved RowMajorTable reads and
// a freshly materialized Key per row (ProjectRow), both for interning and
// for probing.
double PrefillRowRef(const std::vector<const RowMajorTable*>& chain,
                     const std::vector<uint32_t>& join_col,
                     const std::vector<uint32_t>& probe_col,
                     PrefillScratch* s) {
  Timer timer;
  const size_t stages = chain.size();
  s->best.assign(chain[stages - 1]->NumRows(), 0.0);
  for (size_t r = 0; r < s->best.size(); ++r) {
    s->best[r] = chain[stages - 1]->Weight(r);
  }
  for (size_t i = stages - 1; i-- > 0;) {
    const RowMajorTable& child = *chain[i + 1];
    const size_t child_rows = child.NumRows();
    s->idx.Init(1, child_rows / 4);
    s->gid.resize(child_rows);
    for (size_t r = 0; r < child_rows; ++r) {
      Key key;  // per-row materialization, as ProjectRow did
      key.push_back(child.Row(r)[join_col[i + 1]]);
      s->gid[r] = s->idx.Intern(key);
    }
    s->group_best.assign(s->idx.NumKeys(),
                         std::numeric_limits<double>::infinity());
    for (size_t r = 0; r < child_rows; ++r) {
      s->group_best[s->gid[r]] =
          std::min(s->group_best[s->gid[r]], s->best[r]);
    }
    const RowMajorTable& rel = *chain[i];
    const size_t rows = rel.NumRows();
    s->next_best.assign(rows, std::numeric_limits<double>::infinity());
    for (size_t r = 0; r < rows; ++r) {
      Key key;
      key.push_back(rel.Row(r)[probe_col[i]]);
      const int64_t g = s->idx.Find(key);
      if (g >= 0) s->next_best[r] = rel.Weight(r) + s->group_best[g];
    }
    s->best.swap(s->next_best);
  }
  double first = std::numeric_limits<double>::infinity();
  for (const double b : s->best) first = std::min(first, b);
  g_sink = g_sink + first;
  return timer.Seconds();
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv, "ttf");
  PrintHeader();

  std::vector<Shape> shapes;
  {
    const size_t n = Pick(150000, 20000);
    shapes.push_back({"path4", MakePathDatabase(n, 4, 2801),
                      ConjunctiveQuery::Path(4), n, true});
  }
  {
    const size_t n = Pick(150000, 20000);
    shapes.push_back({"star4", MakeStarDatabase(n, 4, 2802),
                      ConjunctiveQuery::Star(4), n, true});
  }
  {
    const size_t n = Pick(1500, 300);
    shapes.push_back({"cycle6", MakeWorstCaseCycleDatabase(n, 6, 2803),
                      ConjunctiveQuery::Cycle(6), n, false});
  }

  PaperNote("ttf",
            "columnar storage: the paired prefill series (column-strided "
            "kernels vs interleaved rows + per-row key materialization) "
            "should show Prefill-columnar >=25% faster TTF than "
            "Prefill-rowref on path4 and star4; the Engine series gate "
            "prepare+TTF of the real pipeline against the baseline");

  const size_t engine_reps = Pick(3, 5);
  const size_t prefill_reps = Pick(20, 40);

  for (const Shape& s : shapes) {
    MeasureEngineTTF(s.db, s.q, 1);  // warm page-ins
    const double engine = MeasureEngineTTF(s.db, s.q, engine_reps);
    PrintRow("ttf", s.name, "prepare+first", s.n, "Engine", 1, engine);

    if (!s.prefill_pair) continue;

    // The chain of atom tables in query order; star uses column 0 as every
    // join column (the shared center), path joins column 1 -> column 0.
    std::vector<const Relation*> chain;
    std::vector<uint32_t> join_col;   // child's column carrying the join var
    std::vector<uint32_t> probe_col;  // this stage's column facing the child
    const bool star = s.name == "star4";
    for (size_t a = 0; a < s.q.NumAtoms(); ++a) {
      chain.push_back(&s.db.Get(s.q.atom(a).relation));
      join_col.push_back(0u);  // both shapes: the join var sits at column 0
      probe_col.push_back(star ? 0u : 1u);
    }
    std::vector<RowMajorTable> snapshots;
    snapshots.reserve(chain.size());
    std::vector<const RowMajorTable*> row_chain;
    for (const Relation* rel : chain) {
      snapshots.emplace_back(*rel);
      row_chain.push_back(&snapshots.back());
    }

    PrefillScratch scratch;
    const GatherKernels& kx = GetGatherKernels(KernelKind::kAuto);
    PrefillColumnar(chain, join_col, probe_col, kx, &scratch);  // warm
    PrefillRowRef(row_chain, join_col, probe_col, &scratch);    // warm
    double col_total = 0, row_total = 0;
    for (size_t r = 0; r < prefill_reps; ++r) {
      col_total += PrefillColumnar(chain, join_col, probe_col, kx, &scratch);
      row_total += PrefillRowRef(row_chain, join_col, probe_col, &scratch);
    }
    PrintRow("ttf", s.name, "prefill", s.n, "Prefill-columnar", 1, col_total);
    PrintRow("ttf", s.name, "prefill", s.n, "Prefill-rowref", 1, row_total);
    PaperNote("ttf", s.name + ": columnar/rowref prefill TTF = " +
                         std::to_string(col_total / row_total));
  }
  return 0;
}
