// Proposition 13 / Fig. 6: a Cartesian-product instance on which Recursive
// needs Θ(n * l * log n) for the first k = n results — each of the first n
// results uses a different tuple of the last relation, so no suffix ranking
// is reused — while Take2 needs only O(n log n + n l).

#include <cstddef>
#include <string>
#include <vector>

#include "bench_common.h"
#include "query/cq.h"
#include "workload/generators.h"

using namespace anyk;
using namespace anyk::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "prop13_worstcase");
  PrintHeader();
  PaperNote("prop13",
            "TT(n): Recursive strictly slower than the best ANYK-PART on the "
            "adversarial Cartesian product (weights j * (n+1)^{l-1-i})");

  const size_t l = 3;
  const std::vector<size_t> ns = SmokeMode()
                                     ? std::vector<size_t>{2000, 4000}
                                     : std::vector<size_t>{20000, 40000,
                                                           80000, 160000};
  for (size_t n : ns) {
    Database db = MakeRecursiveWorstCaseDatabase(n, l);
    ConjunctiveQuery q = ConjunctiveQuery::Product(l);
    for (Algorithm algo :
         {Algorithm::kRecursive, Algorithm::kTake2, Algorithm::kLazy}) {
      auto series = MeasureTT<TropicalDioid>(
          MakeFactory<TropicalDioid>(db, q, algo), n, {});
      PrintRow("prop13", "product3", "fig6-adversarial", n,
               std::string(AlgorithmName(algo)) + "(TTn)", series.produced,
               series.total_seconds);
    }
  }
  return 0;
}
