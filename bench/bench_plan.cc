// Planner regret: serving TT(k) of `--algorithm auto` against the oracle
// best and worst of the six concrete strategies, over
// {path4, star4, cycle4} x k in {1, 100, unbounded}.
//
// Every (shape, k) pair prepares ONE auto-planned PreparedQuery (so the
// topology is fixed and only the strategy choice is measured) and serves
// `reps` requests per strategy: open a session, drain k answers, time the
// whole request. Three rows per pair:
//   * "auto"         — what the planner picked at prepare time,
//   * "oracle-best"  — min over the six strategies (the unbeatable bound),
//   * "oracle-worst" — max over the six (what a wrong pick would cost).
// The unbounded sweep is encoded as dataset "kinf" with k column 0.
//
// The perf gate (scripts/bench_compare.py) holds the "auto" series to the
// no-regression bar like any other series; test_bench_compare.py's
// planner-regret case additionally pins that a baseline where auto == best
// fails the gate when a current run shows auto at worst-of-6.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "anyk/factory.h"
#include "anyk/prepared_query.h"
#include "bench_common.h"
#include "query/cq.h"
#include "util/timer.h"
#include "workload/generators.h"

using namespace anyk;
using namespace anyk::bench;

namespace {

using D = TropicalDioid;

struct Shape {
  std::string name;
  Database db;
  ConjunctiveQuery q;
  size_t n;
};

size_t RepsFor(size_t k) {
  switch (k) {
    case 1: return Pick(4000, 800);
    case 100: return Pick(400, 80);
    default: return Pick(6, 2);  // unbounded full drains
  }
}

/// Cumulative TT(k) of `reps` requests against one strategy of the shared
/// auto-planned prepared query (session construction is part of the
/// request, as in serving).
double MeasureStrategy(const PreparedQuery<D>& pq, Algorithm algo, size_t k,
                       size_t reps) {
  const size_t cap = k == 0 ? std::numeric_limits<size_t>::max() : k;
  ResultRow<D> row;
  double total = 0;
  for (size_t r = 0; r < reps; ++r) {
    Timer timer;
    EnumerationSession<D> sess = pq.NewSession(algo);
    size_t got = 0;
    while (got < cap && sess.NextInto(&row)) ++got;
    total += timer.Seconds();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv, "plan");
  PrintHeader();

  std::vector<Shape> shapes;
  {
    const size_t n = Pick(20000, 2000);
    shapes.push_back(
        {"path4", MakePathDatabase(n, 4, 3301), ConjunctiveQuery::Path(4), n});
  }
  {
    const size_t n = Pick(20000, 2000);
    shapes.push_back({"star4", MakeStarDatabase(n, 4, 3302),
                      ConjunctiveQuery::Star(4), n});
  }
  {
    const size_t n = Pick(1200, 240);
    shapes.push_back({"cycle4", MakeWorstCaseCycleDatabase(n, 4, 3303),
                      ConjunctiveQuery::Cycle(4), n});
  }

  PaperNote("plan",
            "auto should track oracle-best within 2x on every series and "
            "never approach oracle-worst (cost model: batch crossover at "
            "large k, recursive on serial chains, lazy elsewhere)");

  const std::vector<size_t> ks = {1, 100, 0};  // 0 = unbounded
  for (const Shape& s : shapes) {
    for (const size_t k : ks) {
      typename PreparedQuery<D>::Options popts;
      popts.enum_opts.with_witness = false;
      popts.enum_opts.k_budget = k;
      popts.auto_plan = true;
      const PreparedQuery<D> pq(s.db, s.q, popts);
      const size_t reps = RepsFor(k);

      MeasureStrategy(pq, Algorithm::kAuto, k, 1);  // warm-up
      const double auto_secs = MeasureStrategy(pq, Algorithm::kAuto, k, reps);
      double best = 0, worst = 0;
      bool first = true;
      std::string best_name, worst_name;
      for (Algorithm algo : AllRankedAlgorithms()) {
        MeasureStrategy(pq, algo, k, 1);  // warm-up
        const double t = MeasureStrategy(pq, algo, k, reps);
        if (first || t < best) { best = t; best_name = AlgorithmName(algo); }
        if (first || t > worst) { worst = t; worst_name = AlgorithmName(algo); }
        first = false;
      }

      const std::string dataset =
          k == 0 ? "kinf" : "k=" + std::to_string(k);
      PrintRow("plan", s.name, dataset, s.n, "auto", k, auto_secs);
      PrintRow("plan", s.name, dataset, s.n, "oracle-best", k, best);
      PrintRow("plan", s.name, dataset, s.n, "oracle-worst", k, worst);
      PaperNote("plan", s.name + " " + dataset + ": planned " +
                            pq.decision().Summary() + "; best=" + best_name +
                            " worst=" + worst_name + " regret=" +
                            std::to_string(auto_secs / best) + "x");
    }
  }
  return 0;
}
