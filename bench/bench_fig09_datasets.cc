// Figure 9 (datasets table): statistics of the power-law stand-ins next to
// the numbers the paper reports for the real graphs.

#include <cstddef>
#include <cstdint>
#include <cstdio>

#include "harness.h"
#include "workload/graph_gen.h"

using namespace anyk;
using namespace anyk::bench;

namespace {

void Report(const char* name, size_t nodes, size_t edges, uint64_t seed,
            double skew, const char* weights, const char* paper_row) {
  auto e = MakePowerLawEdges(nodes, edges, skew, seed);
  GraphStats s = ComputeGraphStats(nodes, e);
  std::printf("RESULT,fig9,dataset,%s,nodes=%zu,edges=%zu,maxdeg=%zu,"
              "avgdeg=%.1f,weights=%s\n",
              name, s.nodes, s.edges, s.max_degree, s.avg_degree, weights);
  std::printf("# paper fig9: %s\n", paper_row);
}

}  // namespace

int main() {
  std::printf("RESULT,figure,kind,name,nodes,edges,maxdeg,avgdeg,weights\n");
  Report("bitcoin-standin", 5881, 35592, 901, 0.9, "provided-trust",
         "Bitcoin: 5881 nodes, 35592 edges, max/avg degree 1298 / 12.1, "
         "weights provided");
  Report("twitterS-standin", 8000, 87687, 902, 1.1, "pagerank-sum",
         "TwitterS: 8000 nodes, 87687 edges, max/avg degree 6093 / 21.9, "
         "PageRank weights");
  // TwitterL scaled 10x down (paper: 80000 nodes / 2250298 edges / 22072 max
  // / 56.3 avg) to keep the offline suite fast.
  Report("twitterL-standin-scaled", 8000, 225030, 903, 1.1, "pagerank-sum",
         "TwitterL: 80000 nodes, 2250298 edges, max/avg degree 22072 / 56.3, "
         "PageRank weights (ours is a 10x-scaled stand-in)");
  return 0;
}
