// Figure 9 (datasets table): statistics of the power-law stand-ins next to
// the numbers the paper reports for the real graphs.

#include <cstddef>
#include <cstdint>
#include <cstdio>

#include "harness.h"
#include "workload/graph_gen.h"

using namespace anyk;
using namespace anyk::bench;

namespace {

void Report(const char* name, size_t nodes, size_t edges, uint64_t seed,
            double skew, const char* weights, const char* paper_row) {
  anyk::Timer t;
  auto e = MakePowerLawEdges(nodes, edges, skew, seed);
  GraphStats s = ComputeGraphStats(nodes, e);
  // Structured record: k carries the max degree, seconds the generation
  // time (the only measurable quantity here; stats go to stdout + notes).
  bench::PrintRow("fig9", "graph-stats", name, s.edges, "generate",
                  s.max_degree, t.Seconds());
  std::printf("# measured %s: nodes=%zu edges=%zu maxdeg=%zu avgdeg=%.1f "
              "weights=%s\n",
              name, s.nodes, s.edges, s.max_degree, s.avg_degree, weights);
  bench::PaperNote("fig9", paper_row);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig09_datasets");
  PrintHeader();
  const size_t scale = bench::Pick(1, 4);  // smoke: 4x fewer edges
  Report("bitcoin-standin", 5881, 35592 / scale, 901, 0.9, "provided-trust",
         "Bitcoin: 5881 nodes, 35592 edges, max/avg degree 1298 / 12.1, "
         "weights provided");
  Report("twitterS-standin", 8000, 87687 / scale, 902, 1.1, "pagerank-sum",
         "TwitterS: 8000 nodes, 87687 edges, max/avg degree 6093 / 21.9, "
         "PageRank weights");
  // TwitterL scaled 10x down (paper: 80000 nodes / 2250298 edges / 22072 max
  // / 56.3 avg) to keep the offline suite fast.
  Report("twitterL-standin-scaled", 8000, 225030 / scale, 903, 1.1,
         "pagerank-sum",
         "TwitterL: 80000 nodes, 2250298 edges, max/avg degree 22072 / 56.3, "
         "PageRank weights (ours is a 10x-scaled stand-in)");
  return 0;
}
