// bench_shard: intra-query data sharding (--shards S). For each smoke shape
// (3-path, 3-star, worst-case 4-cycle) and S in {1, 2, 4, 8}, report the
// sharded prepare cost (hash partition + S per-shard pipelines on an
// S-worker pool) and the TT(k) series of the merged ranked-union drain.
// S = 1 is the unsharded passthrough, so the "(S=1)" series double as the
// regression anchor: the gate catches both prepare regressions at higher S
// and merged-drain overhead creeping past the union's logarithmic cost.
//
// The drain here is the serial merge (parallel_drain=false) — it is the
// deterministic path the server always uses, and keeps the TT(k) numbers
// comparable across machines regardless of core count.

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "anyk/sharded_query.h"
#include "bench_common.h"
#include "query/cq.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

using namespace anyk;
using namespace anyk::bench;

namespace {

// Owns the worker pool, the sharded pipeline and the merged session, so the
// whole sharded prepare (partition pass + S per-shard builds + the global
// plan decision) is charged to MeasureTT's preprocessing split.
class OwningShardedEnumerator : public Enumerator<TropicalDioid> {
 public:
  OwningShardedEnumerator(const Database& db, const ConjunctiveQuery& q,
                          size_t shards, size_t k_budget) {
    pool_ = std::make_unique<ThreadPool>(shards);
    typename ShardedPreparedQuery<TropicalDioid>::Options sopts;
    sopts.shards = shards;
    sopts.prepare.pool = pool_.get();
    sopts.prepare.enum_opts.with_witness = false;  // benches rank, not audit
    sopts.prepare.enum_opts.k_budget = k_budget;
    pq_ = std::make_unique<ShardedPreparedQuery<TropicalDioid>>(db, q, sopts);
    session_ = std::make_unique<EnumerationSession<TropicalDioid>>(
        pq_->NewSession(Algorithm::kLazy));
  }

  std::optional<ResultRow<TropicalDioid>> Next() override {
    return session_->Next();
  }
  bool NextInto(ResultRow<TropicalDioid>* row) override {
    return session_->NextInto(row);
  }
  size_t NextBatch(ResultRow<TropicalDioid>* rows, size_t n) override {
    return session_->NextBatch(rows, n);
  }

 private:
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ShardedPreparedQuery<TropicalDioid>> pq_;
  std::unique_ptr<EnumerationSession<TropicalDioid>> session_;
};

void RunShardSweep(const std::string& query_label, const Database& db,
                   const ConjunctiveQuery& q, size_t n, size_t max_k) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    auto make = [&db, &q, shards, max_k]() {
      return std::make_unique<OwningShardedEnumerator>(db, q, shards, max_k);
    };
    TTSeries series = MeasureTT<TropicalDioid>(
        make, max_k, GeometricCheckpoints(max_k));
    const std::string tag = "(S=" + std::to_string(shards) + ")";
    // Prepare row: k = 1 by convention (same as bench_serving's prepare
    // rows); the TTL the gate tracks is the prepare time itself.
    PrintRow("shard", query_label, "prepare", n, "prepare" + tag, 1,
             series.preprocessing, series.prep_allocs, series.peak_rss_kb);
    for (const auto& [k, secs] : series.points) {
      PrintRow("shard", query_label, "ranked-union", n, "Lazy" + tag, k,
               secs - series.preprocessing, series.enum_allocs,
               series.peak_rss_kb);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv, "shard");
  PrintHeader();

  PaperNote("shard",
            "intra-query sharding: partitioned prepare + ranked-union "
            "enumeration; S=1 is the unsharded passthrough anchor");

  {
    const size_t n = Pick(200000, 8000);
    Database db = MakePathDatabase(n, 3, 2201);
    ConjunctiveQuery q = ConjunctiveQuery::Path(3);
    RunShardSweep("3path", db, q, n, Pick(10000, 100));
  }
  {
    const size_t n = Pick(200000, 8000);
    Database db = MakeStarDatabase(n, 3, 2202);
    ConjunctiveQuery q = ConjunctiveQuery::Star(3);
    RunShardSweep("3star", db, q, n, Pick(10000, 100));
  }
  {
    const size_t n = Pick(2000, 400);
    Database db = MakeWorstCaseCycleDatabase(n, 4, 2203);
    ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);
    RunShardSweep("4cycle", db, q, n, Pick(10000, 100));
  }
  return 0;
}
