// Figure 11 (a-h): path queries of sizes 3 and 6. Longer paths give
// Recursive more shared suffixes to reuse, so its TTL advantage grows with
// query length.

#include <cstddef>

#include "bench_common.h"
#include "query/cq.h"
#include "workload/generators.h"
#include "workload/graph_gen.h"

using namespace anyk;
using namespace anyk::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig11_paths");
  PrintHeader();

  PaperNote("fig11a", "3-path, all results: Recursive TTL ~ Batch");
  {
    const size_t n = Pick(20000, 1500);
    Database db = MakePathDatabase(n, 3, 1101);
    ConjunctiveQuery q = ConjunctiveQuery::Path(3);
    RunAlgorithms("fig11a", "3path", "synthetic-small", n, db, q,
                  SIZE_MAX, AllRankedAlgorithms());
  }
  PaperNote("fig11b", "3-path large, top n/2: Lazy leads");
  {
    const size_t n = Pick(200000, 4000);
    Database db = MakePathDatabase(n, 3, 1102);
    ConjunctiveQuery q = ConjunctiveQuery::Path(3);
    RunAlgorithms("fig11b", "3path", "synthetic-large", n, db, q, n / 2,
                  AllAnyKAlgorithms());
  }
  PaperNote("fig11c", "3-path Bitcoin, top n/2");
  {
    GraphStats stats;
    Database db = MakeBitcoinStandIn(Pick(5881, 1200), Pick(35592, 7000), 3, 1103, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Path(3);
    RunAlgorithms("fig11c", "3path", "bitcoin-standin", stats.edges, db, q,
                  stats.edges / 2, AllAnyKAlgorithms());
  }

  PaperNote("fig11e",
            "6-path, all results: Recursive TTL clearly beats Batch "
            "(more suffix sharing on longer paths)");
  {
    const size_t n = Pick(100, 30);  // full: ~1e7 results, as in the paper
    Database db = MakePathDatabase(n, 6, 1105);
    ConjunctiveQuery q = ConjunctiveQuery::Path(6);
    RunAlgorithms("fig11e", "6path", "synthetic-small", n, db, q,
                  SIZE_MAX,
                  AllRankedAlgorithms());
  }
  PaperNote("fig11f", "6-path large, top n/2");
  {
    const size_t n = Pick(200000, 4000);
    Database db = MakePathDatabase(n, 6, 1106);
    ConjunctiveQuery q = ConjunctiveQuery::Path(6);
    RunAlgorithms("fig11f", "6path", "synthetic-large", n, db, q, n / 2,
                  AllAnyKAlgorithms());
  }
  PaperNote("fig11g", "6-path Bitcoin, top n/2");
  {
    GraphStats stats;
    Database db = MakeBitcoinStandIn(Pick(5881, 1200), Pick(35592, 7000), 6, 1107, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Path(6);
    RunAlgorithms("fig11g", "6path", "bitcoin-standin", stats.edges, db, q,
                  stats.edges / 2, AllAnyKAlgorithms());
  }
  return 0;
}
