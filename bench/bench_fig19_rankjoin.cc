// Fig. 19 / Section 9.1.3: top-k Rank-Join (HRJN) vs any-k on database I2.
// Under max-first ranking the corridor threshold forces Rank-Join through
// all Θ(n^2) R1 x R2 combinations before it can emit the top result; the
// any-k TTF is O(n * l).

#include <cstddef>
#include <cstdio>
#include <vector>

#include "anyk/factory.h"
#include "dioid/max_plus.h"
#include "dp/stage_graph.h"
#include "harness.h"
#include "join/rank_join.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "util/timer.h"
#include "workload/paper_instances.h"

using namespace anyk;
using namespace anyk::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig19_rankjoin");
  PrintHeader();
  PaperNote("fig19/sec9.1.3",
            "J*/Rank-Join examine (n-1)^{l-1} combinations before the top-1 "
            "on I2; our approach achieves O(n*l)");

  const std::vector<size_t> ns = SmokeMode()
                                     ? std::vector<size_t>{100, 200}
                                     : std::vector<size_t>{250, 500, 1000,
                                                           2000};
  for (size_t n : ns) {
    Database db = MakeI2Database(n);
    ConjunctiveQuery q = ConjunctiveQuery::Path(3);

    // Rank-Join with max-first ranking, realized by negating the weights
    // (the operator itself enumerates ascending).
    {
      Database neg = MakeI2Database(n);
      for (int i = 1; i <= 3; ++i) {
        auto& rel = neg.GetMutable("R" + std::to_string(i));
        for (size_t r = 0; r < rel.NumRows(); ++r) {
          rel.SetWeight(r, -rel.Weight(r));
        }
      }
      Timer t;
      RankJoin rj(neg, q);
      auto top = rj.Next();
      PrintRow("fig19", "3path", "I2", n, "RankJoin(TTF)", 1, t.Seconds());
      std::printf("# RankJoin pulled %zu input tuples, examined %zu join "
                  "combinations for the top-1 (top weight %.0f)\n",
                  rj.stats().input_tuples_pulled,
                  rj.stats().join_combinations, top ? -top->weight : -1.0);
    }

    // Any-k under the max-plus dioid.
    {
      using MP = MaxPlusDioid;
      Timer t;
      TDPInstance inst = BuildAcyclicInstance(db, q);
      StageGraph<MP> g = BuildStageGraph<MP>(inst);
      auto e = MakeEnumerator<MP>(&g, Algorithm::kLazy);
      auto top = e->Next();
      PrintRow("fig19", "3path", "I2", n, "anyk-Lazy(TTF)", 1, t.Seconds());
      if (top) {
        std::printf("# anyk top weight %.0f (expected %.0f)\n", top->weight,
                    1.0 + 10.0 + 100.0 * n);
      }
    }
  }
  return 0;
}
