// Fig. 18 / Section 9.1.2: lexicographic orders that disagree with the
// factorization order. On R1 = {(i,1)}, R2 = {(1,i)}, a factorized
// representation restructured for the order A -> C -> B has size Θ(n^2); we
// emulate that cost with "materialize the product + sort lexicographically".
// Our any-k enumeration under the lexicographic dioid starts emitting after
// O(n) preprocessing.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "anyk/factory.h"
#include "dioid/lex.h"
#include "dp/stage_graph.h"
#include "harness.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "util/timer.h"
#include "workload/paper_instances.h"

using namespace anyk;
using namespace anyk::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig18_lexicographic");
  PrintHeader();
  PaperNote("fig18/sec9.1.2",
            "restructured factorization: Θ(n^2) preprocessing; ours: O(n) "
            "TTF, O(n^2) TTL with logarithmic delay");

  using Lex = LexDioid<4>;
  const std::vector<size_t> ns = SmokeMode()
                                     ? std::vector<size_t>{400, 800}
                                     : std::vector<size_t>{1000, 2000, 4000,
                                                           8000};
  for (size_t n : ns) {
    Database db = MakeFactorizedBadDatabase(n, 1800 + n);
    ConjunctiveQuery q = ConjunctiveQuery::Path(2);

    // Ours: TTF and TT(1000) under the lexicographic dioid.
    auto make = [&]() {
      struct Holder : public Enumerator<Lex> {
        TDPInstance inst;
        StageGraph<Lex> g;
        std::unique_ptr<Enumerator<Lex>> e;
        Holder(const Database& db, const ConjunctiveQuery& q)
            : inst(BuildAcyclicInstance(db, q)),
              g(BuildStageGraph<Lex>(inst)) {
          e = MakeEnumerator<Lex>(&g, Algorithm::kTake2);
        }
        std::optional<ResultRow<Lex>> Next() override { return e->Next(); }
      };
      return std::make_unique<Holder>(db, q);
    };
    RunAndPrint<Lex>("fig18", "2path-lex", "factorized-bad", n,
                     "anyk-Take2",
                     std::function<std::unique_ptr<Enumerator<Lex>>()>(make),
                     1000);

    // Restructuring baseline: materialize all n^2 (A, B, C) results and sort
    // them lexicographically before anything can be emitted.
    {
      Timer t;
      std::vector<std::pair<Value, Value>> rows;
      rows.reserve(n * n);
      const Relation& r1 = db.Get("R1");
      const Relation& r2 = db.Get("R2");
      for (size_t i = 0; i < r1.NumRows(); ++i) {
        for (size_t j = 0; j < r2.NumRows(); ++j) {
          rows.emplace_back(r1.At(i, 0), r2.At(j, 1));
        }
      }
      std::sort(rows.begin(), rows.end());
      PrintRow("fig18", "2path-lex", "factorized-bad", n,
               "restructure-baseline(TTF)", 1, t.Seconds());
    }
  }
  return 0;
}
