// Serving latency under concurrent clients: an in-process anykd plus C
// closed-loop clients issuing paced query/page requests over real loopback
// sockets, reporting p50/p99 request latency and the sustained request rate.
//
// Every client runs the same loop: open a ranked query (k-row first page,
// served from the warmed prepared-query cache), pull one more page through
// the cursor, close it. Each HTTP round trip is one latency sample; pacing
// targets a fixed aggregate request rate so the percentiles measure queueing
// plus service time at that load, not a saturation burst.
//
// Reported rows (schema v3):
//   * dataset "C<clients>/p50" and "C<clients>/p99" with threads=1 — the
//     latency percentiles; these are judged by the perf-regression gate
//     (sub-resolution baselines take the absolute-slack path).
//   * dataset "C<clients>" with threads=C — achieved requests/sec, skipped
//     by the gate like every threads != 1 record.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "server/http_client.h"
#include "server/server.h"
#include "storage/database.h"
#include "util/alloc_stats.h"
#include "util/timer.h"
#include "workload/generators.h"

namespace anyk {
namespace bench {
namespace {

constexpr const char* kSql =
    "SELECT * FROM R1, R2, R3 "
    "WHERE R1.A2 = R2.A1 AND R2.A2 = R3.A1 ORDER BY WEIGHT ASC";

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples->size() - 1) + 0.5);
  std::nth_element(samples->begin(), samples->begin() + idx, samples->end());
  return (*samples)[idx];
}

void RunServing() {
  const size_t n = Pick(8000, 800);
  const size_t requests_per_client = Pick(200, 40);
  const double target_qps = Pick(400.0, 200.0);
  const size_t page_k = 100;

  Database db = MakePathDatabase(n, 3, /*seed=*/11, {.fanout = 4.0});
  server::ServerOptions sopts;
  sopts.workers = 8;
  sopts.max_sessions = 256;
  server::AnykServer srv(std::move(db), sopts);
  srv.Start();
  const int port = srv.bound_port();
  const std::string query_target =
      "/v1/query?sql=" + server::HttpClient::Encode(kSql) +
      "&k=" + std::to_string(page_k);

  // Warm the cache once so the measured loop serves hits; the preparation
  // cost is its own (serial, gate-visible) row.
  {
    Timer prep;
    server::HttpClient warm(port);
    warm.Get(query_target);
    PrintRow("serving", "path3", "prepare", n, "Lazy", 1, prep.Seconds(), 0,
             PeakRssKb());
  }
  PaperNote("serving",
            "closed-loop clients against the in-process daemon; p50/p99 "
            "request latency should sit far below the per-query prepare "
            "time because the LRU cache serves every request after the "
            "first");

  for (const size_t clients : {size_t{1}, size_t{4}}) {
    std::vector<std::vector<double>> latencies(clients);
    const double interval_s = static_cast<double>(clients) / target_qps;
    Timer wall;
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        server::HttpClient client(port);
        auto next_send = std::chrono::steady_clock::now();
        for (size_t r = 0; r < requests_per_client; ++r) {
          std::this_thread::sleep_until(next_send);
          next_send += std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(interval_s));
          Timer rt;
          server::ClientResponse resp = client.Get(query_target);
          latencies[c].push_back(rt.Seconds());
          // One paged continuation per request, then release the cursor.
          const size_t pos = resp.body.find("CURSOR,");
          if (pos != std::string::npos) {
            const size_t end = resp.body.find('\n', pos);
            const std::string cursor =
                resp.body.substr(pos + 7, end - pos - 7);
            Timer nt;
            client.Get("/v1/next?cursor=" + cursor +
                       "&k=" + std::to_string(page_k));
            latencies[c].push_back(nt.Seconds());
            client.Get("/v1/close?cursor=" + cursor);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const double wall_seconds = wall.Seconds();

    std::vector<double> all;
    size_t total_requests = 0;
    for (const auto& l : latencies) {
      all.insert(all.end(), l.begin(), l.end());
      total_requests += l.size();
    }
    const std::string dataset = "C" + std::to_string(clients);
    PrintRow("serving", "path3", dataset + "/p50", n, "Lazy", all.size(),
             Percentile(&all, 0.50), 0, PeakRssKb());
    PrintRow("serving", "path3", dataset + "/p99", n, "Lazy", all.size(),
             Percentile(&all, 0.99), 0, PeakRssKb());
    PrintRow("serving", "path3", dataset, n, "Lazy", total_requests,
             wall_seconds, 0, PeakRssKb(), clients,
             wall_seconds > 0
                 ? static_cast<double>(total_requests) / wall_seconds
                 : 0);
  }
  srv.Stop();
}

}  // namespace
}  // namespace bench
}  // namespace anyk

int main(int argc, char** argv) {
  anyk::bench::InitBench(argc, argv, "serving");
  anyk::bench::PrintHeader();
  anyk::bench::SectionNote(
      "anykd request latency: concurrent paged clients over loopback HTTP");
  anyk::bench::RunServing();
  return 0;
}
