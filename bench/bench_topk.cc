// Budget-aware top-k ablation: serving TT(k) with and without the k-budget
// fast path, over k in {1, 10, 100, 10000} x {path, star, cycle}.
//
// Measures the request-serving scenario (ROADMAP: many users asking for a
// ranked page): the PreparedQuery is built once outside the measurement;
// each repetition serves one request — open a session, drain k answers —
// and the *whole request* is timed (session construction is part of TT(k)
// in serving, unlike the paper's preprocessing accounting).
//   * "Lazy"       — the pre-PR configuration: binary-heap candidate PQ,
//                    unbounded (no budget anywhere), NextInto drain.
//   * "Lazy+topk"  — the budget-aware fast path: EnumOptions::k_budget = k
//                    (bounded O(k) candidate heap, O(1) conn_second
//                    deviations, lazily materialized successor structures,
//                    final-answer strategy bypass) drained via NextBatch.
//
// Every (shape, k, variant) pair is reported as its own series — the k is
// encoded in the dataset column ("k=10") — so scripts/bench_compare.py
// gates each TT(k) point independently. The `seconds` of a record is the
// cumulative time of all `reps` repetitions (reps is fixed per k so runs
// are comparable); per-request TT(k) is seconds / reps.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "anyk/anyk_part.h"
#include "anyk/prepared_query.h"
#include "anyk/union_anyk.h"
#include "bench_common.h"
#include "query/cq.h"
#include "util/binary_heap.h"
#include "util/timer.h"
#include "workload/generators.h"

using namespace anyk;
using namespace anyk::bench;

namespace {

struct Shape {
  std::string name;
  Database db;
  ConjunctiveQuery q;
  size_t n;
};

size_t RepsFor(size_t k) {
  // Inverse-in-k repetition counts keep every series in measurable range
  // (sub-0.05s baselines are skipped by the perf gate) without letting the
  // k=10000 points dominate the wall clock.
  switch (k) {
    case 1: return Pick(60000, 12000);
    case 10: return Pick(30000, 6000);
    case 100: return Pick(8000, 1600);
    default: return Pick(150, 30);
  }
}

// The budgeted path is ~10-80x faster per request at small k; it runs 10x
// the repetitions so its own series also clear the perf gate's 0.05s
// measurability floor (each series' reps are fixed, so baseline and
// current runs stay comparable; ratios below normalize per request).
size_t FastRepsFor(size_t k) { return RepsFor(k) * (k <= 100 ? 10 : 1); }

using D = TropicalDioid;

/// Faithful replica of the pre-PR LazyStrategy (commit f960221): an eagerly
/// constructed per-session ConnData table and heapify-always connector
/// initialization over a binary heap. The current LazyStrategy (lazy
/// arena-backed pointer table, budget-aware top-two scan / capped
/// selection) is part of this PR, so using it in the baseline series would
/// hide most of what the ablation is supposed to measure.
template <SelectiveDioid DD>
class SeedLazyStrategy {
 public:
  static constexpr const char* kName = "SeedLazy";

  SeedLazyStrategy(const StageGraph<DD>* g, Arena* arena)
      : g_(g), arena_(arena), conns_(g->total_connectors) {}

  uint32_t Top(uint32_t stage, uint32_t conn) {
    Init(stage, conn);
    return 0;
  }

  uint32_t MemberPos(uint32_t stage, uint32_t conn, uint32_t choice) {
    return conns_[g_->GlobalConn(stage, conn)].sorted[choice];
  }

  template <typename Out>
  void Successors(uint32_t stage, uint32_t conn, uint32_t choice, Out* out) {
    ++stats_.succ_calls;
    ConnData& cd = conns_[g_->GlobalConn(stage, conn)];
    if (choice + 1 >= cd.sorted.size() && !cd.heap.Empty()) {
      cd.sorted.push_back(cd.heap.PopMin());
    }
    if (choice + 1 < cd.sorted.size()) {
      out->push_back(choice + 1);
      ++stats_.succ_returned;
    }
  }

  const StrategyStats& stats() const { return stats_; }

 private:
  struct Cmp {
    const StageGraph<DD>* g;
    uint32_t stage;
    bool operator()(uint32_t a, uint32_t b) const {
      return DD::Less(g->stages[stage].member_val[a],
                      g->stages[stage].member_val[b]);
    }
  };
  using ConnHeap = BinaryHeap<uint32_t, Cmp, ArenaAllocator<uint32_t>>;

  struct ConnData {
    bool init = false;
    ArenaVector<uint32_t> sorted;
    ConnHeap heap{Cmp{nullptr, 0}};
  };

  void Init(uint32_t stage, uint32_t conn) {
    ConnData& cd = conns_[g_->GlobalConn(stage, conn)];
    if (cd.init) return;
    cd.init = true;
    const auto& st = g_->stages[stage];
    typename ConnHeap::Container all(ArenaAllocator<uint32_t>{arena_});
    all.resize(st.ConnSize(conn));
    for (uint32_t i = 0; i < all.size(); ++i) all[i] = st.conn_begin[conn] + i;
    cd.heap = ConnHeap(Cmp{g_, stage}, ArenaAllocator<uint32_t>(arena_));
    cd.heap.Assign(std::move(all));
    cd.sorted = MakeArenaVector<uint32_t>(arena_);
    cd.sorted.push_back(cd.heap.PopMin());
    if (!cd.heap.Empty()) cd.sorted.push_back(cd.heap.PopMin());
    ++stats_.conns_initialized;
    stats_.init_work += st.ConnSize(conn);
  }

  const StageGraph<DD>* g_;
  Arena* arena_;
  std::vector<ConnData> conns_;
  StrategyStats stats_;
};

using SeedEnumerator = AnyKPartEnumerator<D, SeedLazyStrategy, BinaryHeap>;

/// One pre-PR-configuration request: binary-heap candidate queues,
/// unbounded enumerators, NextInto drain. Cycle-union plans replicate the
/// pre-PR union (each part unbounded).
std::unique_ptr<Enumerator<D>> OpenSeedSession(const PreparedQuery<D>& pq) {
  EnumOptions eo;
  eo.with_witness = false;
  if (pq.plan() == QueryPlan::kCycleUnion) {
    std::vector<std::unique_ptr<Enumerator<D>>> parts;
    parts.reserve(pq.graphs().size());
    for (const auto& g : pq.graphs()) {
      parts.push_back(std::make_unique<SeedEnumerator>(g.get(), eo));
    }
    return std::make_unique<UnionEnumerator<D>>(std::move(parts));
  }
  return std::make_unique<SeedEnumerator>(pq.graphs()[0].get(), eo);
}

/// Cumulative full-request TT(k) over `reps` requests: each repetition
/// opens a session and drains k answers, and both are timed.
double MeasureServing(const PreparedQuery<D>& pq, size_t k, size_t reps,
                      bool budget) {
  std::vector<ResultRow<D>> batch(64);
  ResultRow<D> row;
  double total = 0;
  for (size_t r = 0; r < reps; ++r) {
    Timer timer;
    if (budget) {
      EnumOptions eo;
      eo.with_witness = false;
      eo.k_budget = k;
      EnumerationSession<D> sess = pq.NewSession(Algorithm::kLazy, eo);
      size_t got = 0;
      while (got < k) {
        const size_t want = std::min(batch.size(), k - got);
        const size_t n = sess.NextBatch(batch.data(), want);
        got += n;
        if (n < want) break;
      }
    } else {
      std::unique_ptr<Enumerator<D>> e = OpenSeedSession(pq);
      size_t got = 0;
      while (got < k && e->NextInto(&row)) ++got;
    }
    total += timer.Seconds();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv, "topk");
  PrintHeader();

  std::vector<Shape> shapes;
  {
    const size_t n = Pick(50000, 4000);
    shapes.push_back(
        {"path4", MakePathDatabase(n, 4, 2401), ConjunctiveQuery::Path(4), n});
  }
  {
    const size_t n = Pick(50000, 4000);
    shapes.push_back({"star4", MakeStarDatabase(n, 4, 2402),
                      ConjunctiveQuery::Star(4), n});
  }
  {
    const size_t n = Pick(2000, 400);
    shapes.push_back({"cycle4", MakeWorstCaseCycleDatabase(n, 4, 2403),
                      ConjunctiveQuery::Cycle(4), n});
  }

  PaperNote("topk",
            "budget-aware serving TT(k) should beat the pre-PR path by "
            ">=20% for k <= 100 on path and star (O(k) bounded heaps, O(1) "
            "conn_second deviations, lazily materialized successor "
            "structures, batched binding)");

  const std::vector<size_t> ks = {1, 10, 100, 10000};
  for (const Shape& s : shapes) {
    typename PreparedQuery<TropicalDioid>::Options popts;
    popts.enum_opts.with_witness = false;
    PreparedQuery<TropicalDioid> pq(s.db, s.q, popts);
    for (const size_t k : ks) {
      const size_t reps = RepsFor(k);
      const size_t fast_reps = FastRepsFor(k);
      // Warm both paths once (lazy OS page-ins, branch predictors).
      MeasureServing(pq, k, 1, false);
      MeasureServing(pq, k, 1, true);
      const double unbounded = MeasureServing(pq, k, reps, false);
      const double budgeted = MeasureServing(pq, k, fast_reps, true);
      const std::string dataset = "k=" + std::to_string(k);
      PrintRow("topk", s.name, dataset, s.n, "Lazy", k, unbounded);
      PrintRow("topk", s.name, dataset, s.n, "Lazy+topk", k, budgeted);
      const double per_request_ratio =
          (budgeted / static_cast<double>(fast_reps)) /
          (unbounded / static_cast<double>(reps));
      PaperNote("topk", s.name + " " + dataset + ": budgeted/unbounded = " +
                            std::to_string(per_request_ratio) +
                            " per request (" + std::to_string(reps) + "/" +
                            std::to_string(fast_reps) + " reps)");
    }
  }
  return 0;
}
