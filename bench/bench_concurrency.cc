// Concurrent query serving: N sessions draining ONE shared PreparedQuery.
//
// The paper's TT(k) guarantees are per query; a serving system amortizes
// the preprocessing phase across many concurrent enumeration sessions
// (PreparedQuery / EnumerationSession, see docs/ARCHITECTURE.md "Threading
// model"). This bench prepares a path query once and then drains it with
// 1 / 2 / 4 / 8 concurrent sessions, reporting
//   * one row per session   (dataset "T<threads>/s<i>"): that session's TTL
//     and its own answers/sec,
//   * one aggregate row     (dataset "T<threads>"): total answers produced
//     and aggregate answers/sec across all sessions (k / wall-clock).
// Sessions share zero mutable state, so on a machine with >= T cores the
// aggregate rate should scale ~linearly until memory bandwidth saturates.
//
// The threads / answers_per_sec columns are schema v3; the perf-regression
// gate (scripts/bench_compare.py) only judges serial TTL series and skips
// every record with threads != 1.

#include <cstddef>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "anyk/prepared_query.h"
#include "dioid/tropical.h"
#include "harness.h"
#include "util/alloc_stats.h"
#include "util/timer.h"
#include "workload/generators.h"

namespace anyk {
namespace bench {
namespace {

void RunConcurrency() {
  const size_t n = Pick(20000, 2000);
  const size_t l = 4;
  const size_t max_k = Pick(500000, 50000);  // per-session drain cap
  Database db = MakePathDatabase(n, l, /*seed=*/7, {.fanout = 4.0});
  ConjunctiveQuery q = ConjunctiveQuery::Path(l);

  Timer prep_timer;
  PreparedQuery<TropicalDioid>::Options popts;
  popts.enum_opts.with_witness = false;
  PreparedQuery<TropicalDioid> pq(db, q, popts);
  PaperNote("concurrency",
            "one preprocessing pass (" +
                std::to_string(prep_timer.Seconds()) +
                "s) amortized across all sessions; per-session TTL should "
                "stay ~flat and aggregate answers/sec should rise with "
                "threads on a multi-core host");

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    std::vector<double> ttl(threads, 0.0);
    std::vector<size_t> produced(threads, 0);
    // Series-level alloc total, like every other bench: the delta spans
    // thread spawn + session construction + the drains, so it measures the
    // whole serving cost of the round, not just the arena-backed hot loop
    // (which invariants_test/concurrency_test already pin at zero).
    const AllocCounts allocs_at_start = CurrentAllocCounts();
    Timer wall;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&pq, &ttl, &produced, t, max_k] {
        Timer session_timer;
        EnumerationSession<TropicalDioid> sess =
            pq.NewSession(Algorithm::kLazy);
        ResultRow<TropicalDioid> row;
        size_t got = 0;
        while (got < max_k && sess.NextInto(&row)) ++got;
        produced[t] = got;
        ttl[t] = session_timer.Seconds();
      });
    }
    for (std::thread& w : workers) w.join();
    const double wall_seconds = wall.Seconds();
    const size_t series_allocs = static_cast<size_t>(
        AllocDelta(allocs_at_start, CurrentAllocCounts()).news);
    const size_t total =
        std::accumulate(produced.begin(), produced.end(), size_t{0});

    const std::string agg_dataset = "T" + std::to_string(threads);
    for (size_t t = 0; t < threads; ++t) {
      PrintRow("concurrency", "path4", agg_dataset + "/s" + std::to_string(t),
               n, "Lazy", produced[t], ttl[t], series_allocs, PeakRssKb(),
               threads,
               ttl[t] > 0 ? static_cast<double>(produced[t]) / ttl[t] : 0);
    }
    PrintRow("concurrency", "path4", agg_dataset, n, "Lazy", total,
             wall_seconds, series_allocs, PeakRssKb(), threads,
             wall_seconds > 0 ? static_cast<double>(total) / wall_seconds
                              : 0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace anyk

int main(int argc, char** argv) {
  anyk::bench::InitBench(argc, argv, "bench_concurrency");
  anyk::bench::PrintHeader();
  anyk::bench::SectionNote(
      "concurrent sessions over one shared PreparedQuery (path-4 query)");
  anyk::bench::RunConcurrency();
  return 0;
}
