// Benchmark harness: measures TTF / TT(k) / TTL of any enumerator pipeline
// and prints uniform CSV-style rows, one per checkpoint:
//
//   RESULT,<figure>,<query>,<dataset>,<n>,<algorithm>,<k>,<seconds>
//
// Preprocessing (building decompositions, stage graphs, sorting...) happens
// inside the factory closure, so it is charged to TT like in the paper.
// `# paper:` comment lines next to the measurements record what the paper
// observed for the corresponding figure, so shape comparison is immediate.

#ifndef ANYK_BENCH_HARNESS_H_
#define ANYK_BENCH_HARNESS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "util/timer.h"

namespace anyk {
namespace bench {

/// Checkpoints 1, 2, 5, 10, 20, 50, ... up to max_k.
std::vector<size_t> GeometricCheckpoints(size_t max_k);

void PrintHeader();
void PrintRow(const std::string& figure, const std::string& query,
              const std::string& dataset, size_t n,
              const std::string& algorithm, size_t k, double seconds);
void PaperNote(const std::string& figure, const std::string& note);
void SectionNote(const std::string& text);

struct TTSeries {
  std::vector<std::pair<size_t, double>> points;  // (k, seconds)
  size_t produced = 0;
  double total_seconds = 0;   // time when enumeration stopped
  double max_delay = 0;       // worst gap between consecutive results
  double preprocessing = 0;   // time spent in make() before the first Next()
  bool exhausted = false;
};

/// Run `make()` (preprocessing) + Next() until `max_k` results or
/// exhaustion, recording cumulative time at each checkpoint. When
/// `track_delay` is set, every result is timestamped to report the maximum
/// inter-result delay (Fig. 5's Delay(k) column, measured).
template <typename D>
TTSeries MeasureTT(
    const std::function<std::unique_ptr<Enumerator<D>>()>& make, size_t max_k,
    const std::vector<size_t>& checkpoints, bool track_delay = false) {
  TTSeries series;
  Timer timer;
  std::unique_ptr<Enumerator<D>> e = make();
  series.preprocessing = timer.Seconds();
  size_t next_cp = 0;
  double last = series.preprocessing;
  while (series.produced < max_k) {
    auto row = e->Next();
    if (!row) {
      series.exhausted = true;
      break;
    }
    ++series.produced;
    if (track_delay) {
      const double now = timer.Seconds();
      series.max_delay = std::max(series.max_delay, now - last);
      last = now;
    }
    if (next_cp < checkpoints.size() &&
        series.produced == checkpoints[next_cp]) {
      series.points.emplace_back(series.produced, timer.Seconds());
      ++next_cp;
    }
  }
  series.total_seconds = timer.Seconds();
  if (series.points.empty() ||
      series.points.back().first != series.produced) {
    series.points.emplace_back(series.produced, series.total_seconds);
  }
  return series;
}

/// Measure and print all checkpoint rows.
template <typename D>
TTSeries RunAndPrint(
    const std::string& figure, const std::string& query,
    const std::string& dataset, size_t n, const std::string& algorithm,
    const std::function<std::unique_ptr<Enumerator<D>>()>& make,
    size_t max_k) {
  TTSeries series = MeasureTT<D>(make, max_k, GeometricCheckpoints(max_k));
  for (const auto& [k, secs] : series.points) {
    PrintRow(figure, query, dataset, n, algorithm, k, secs);
  }
  return series;
}

}  // namespace bench
}  // namespace anyk

#endif  // ANYK_BENCH_HARNESS_H_
