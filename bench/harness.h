// Benchmark harness: measures TTF / TT(k) / TTL of any enumerator pipeline
// and reports through a structured Reporter that every bench target shares.
//
// Each checkpoint becomes one BenchRecord; on stdout they print as the
// legacy uniform CSV rows
//
//   RESULT,<figure>,<query>,<dataset>,<n>,<algorithm>,<k>,<seconds>
//
// and, when `--json=PATH` or `--json-dir=DIR` is passed, the run additionally
// writes a schema-versioned `BENCH_<bench>.json` holding every record plus
// the `# paper:` expectation notes (scripts/bench_compare.py consumes these
// for the perf-regression gate; see docs/CLI.md for the schema).
//
// `--smoke` switches every bench into a small-n configuration via
// `Pick(full, smoke)` so CI can run the whole suite in seconds.
//
// Preprocessing (building decompositions, stage graphs, sorting...) happens
// inside the factory closure, so it is charged to TT like in the paper.

#ifndef ANYK_BENCH_HARNESS_H_
#define ANYK_BENCH_HARNESS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "util/alloc_stats.h"
#include "util/checkpoints.h"
#include "util/timer.h"

namespace anyk {
namespace bench {

struct BenchRecord {
  std::string figure;
  std::string query;
  std::string dataset;
  std::string algorithm;
  size_t n = 0;
  size_t k = 0;
  double seconds = 0;
  // Memory columns (series-level totals, attached to every row of a series):
  // global operator-new calls during the enumeration phase (after the
  // factory returned) and the process peak RSS when the series finished.
  size_t allocs = 0;
  size_t peak_rss_kb = 0;
  // Concurrency columns (schema v3, bench_concurrency): number of sessions
  // draining one PreparedQuery concurrently, and the aggregate enumeration
  // throughput across them. The perf-regression gate judges TTL of serial
  // series only; scripts/bench_compare.py skips records with threads != 1.
  size_t threads = 1;
  double answers_per_sec = 0;
};

/// Process-wide collector behind the legacy Print* helpers. Records every
/// RESULT row and paper note; Flush() (atexit-registered by InitBench)
/// writes BENCH_<bench>.json when a JSON destination was configured.
class Reporter {
 public:
  static Reporter& Get();

  /// Parse --smoke / --json=PATH / --json-dir=DIR (unknown flags are
  /// ignored, so wrappers can pass extra arguments through).
  void Init(int argc, char** argv, const std::string& bench_name);

  bool smoke() const { return smoke_; }
  const std::string& name() const { return name_; }

  void Row(const std::string& figure, const std::string& query,
           const std::string& dataset, size_t n, const std::string& algorithm,
           size_t k, double seconds, size_t allocs = 0,
           size_t peak_rss_kb = 0, size_t threads = 1,
           double answers_per_sec = 0);
  void Note(const std::string& figure, const std::string& note);
  void Section(const std::string& text);

  /// Write the JSON report if configured; idempotent.
  void Flush();

 private:
  std::string name_ = "bench";
  std::string json_path_;  // empty = no JSON output
  bool smoke_ = false;
  bool flushed_ = false;
  std::vector<BenchRecord> records_;
  std::vector<std::pair<std::string, std::string>> notes_;  // (figure, note)
};

/// Call first in every bench main(): configures the Reporter and registers
/// the JSON flush at exit.
void InitBench(int argc, char** argv, const std::string& bench_name);

/// True when the current run was started with --smoke.
bool SmokeMode();

/// Size selector: the paper-scale value normally, the reduced value under
/// --smoke (CI perf gate; see the bench-smoke CMake target).
inline size_t Pick(size_t full, size_t smoke) {
  return SmokeMode() ? smoke : full;
}

void PrintHeader();
void PrintRow(const std::string& figure, const std::string& query,
              const std::string& dataset, size_t n,
              const std::string& algorithm, size_t k, double seconds,
              size_t allocs = 0, size_t peak_rss_kb = 0, size_t threads = 1,
              double answers_per_sec = 0);
void PaperNote(const std::string& figure, const std::string& note);
void SectionNote(const std::string& text);

using ::anyk::GeometricCheckpoints;

struct TTSeries {
  std::vector<std::pair<size_t, double>> points;  // (k, seconds)
  size_t produced = 0;
  double total_seconds = 0;   // time when enumeration stopped
  double max_delay = 0;       // worst gap between consecutive results
  double preprocessing = 0;   // time spent in make() before the first Next()
  bool exhausted = false;
  size_t prep_allocs = 0;     // operator-new calls inside make()
  size_t enum_allocs = 0;     // operator-new calls during enumeration
  size_t peak_rss_kb = 0;     // process peak RSS at the end of the series
};

/// Run `make()` (preprocessing) + a drain until `max_k` results or
/// exhaustion, recording cumulative time at each checkpoint plus the
/// allocation counts of both phases (the preprocessing/enumeration split the
/// flat-memory work targets; see util/alloc_stats.h). The drain pulls
/// through NextBatch with checkpoint-aligned batches — the production drain
/// path (what the CLI and TopK use), which binds stage-wise through the
/// column segments; batch boundaries land exactly on the checkpoints so
/// TT(k) timestamps are unchanged. When `track_delay` is set, results are
/// instead pulled one NextInto at a time and timestamped to report the
/// maximum inter-result delay (Fig. 5's Delay(k) column, measured).
template <typename D>
TTSeries MeasureTT(
    const std::function<std::unique_ptr<Enumerator<D>>()>& make, size_t max_k,
    const std::vector<size_t>& checkpoints, bool track_delay = false) {
  TTSeries series;
  const AllocCounts at_start = CurrentAllocCounts();
  Timer timer;
  std::unique_ptr<Enumerator<D>> e = make();
  series.preprocessing = timer.Seconds();
  const AllocCounts at_enum = CurrentAllocCounts();
  series.prep_allocs = AllocDelta(at_start, at_enum).news;
  size_t next_cp = 0;
  double last = series.preprocessing;
  if (track_delay) {
    ResultRow<D> row;
    while (series.produced < max_k) {
      if (!e->NextInto(&row)) {
        series.exhausted = true;
        break;
      }
      ++series.produced;
      const double now = timer.Seconds();
      series.max_delay = std::max(series.max_delay, now - last);
      last = now;
      if (next_cp < checkpoints.size() &&
          series.produced == checkpoints[next_cp]) {
        series.points.emplace_back(series.produced, timer.Seconds());
        ++next_cp;
      }
    }
  } else {
    std::vector<ResultRow<D>> batch(64);
    while (series.produced < max_k) {
      size_t want = std::min(batch.size(), max_k - series.produced);
      if (next_cp < checkpoints.size()) {
        want = std::min(want, checkpoints[next_cp] - series.produced);
      }
      const size_t got = e->NextBatch(batch.data(), want);
      series.produced += got;
      if (next_cp < checkpoints.size() &&
          series.produced == checkpoints[next_cp]) {
        series.points.emplace_back(series.produced, timer.Seconds());
        ++next_cp;
      }
      if (got < want) {  // short return == exhausted (the NextBatch contract)
        series.exhausted = true;
        break;
      }
    }
  }
  series.total_seconds = timer.Seconds();
  series.enum_allocs = AllocDelta(at_enum, CurrentAllocCounts()).news;
  series.peak_rss_kb = PeakRssKb();
  if (series.points.empty() ||
      series.points.back().first != series.produced) {
    series.points.emplace_back(series.produced, series.total_seconds);
  }
  return series;
}

/// Measure and report all checkpoint rows.
template <typename D>
TTSeries RunAndPrint(
    const std::string& figure, const std::string& query,
    const std::string& dataset, size_t n, const std::string& algorithm,
    const std::function<std::unique_ptr<Enumerator<D>>()>& make,
    size_t max_k) {
  TTSeries series = MeasureTT<D>(make, max_k, GeometricCheckpoints(max_k));
  for (const auto& [k, secs] : series.points) {
    PrintRow(figure, query, dataset, n, algorithm, k, secs,
             series.enum_allocs, series.peak_rss_kb);
  }
  return series;
}

}  // namespace bench
}  // namespace anyk

#endif  // ANYK_BENCH_HARNESS_H_
