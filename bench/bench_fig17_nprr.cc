// Figure 17 (Section 9.1.1): on database I1, a worst-case-optimal batch join
// (our NPRR-style GenericJoin) needs Θ(n^2) even for the *first* 4-cycle
// result, while the any-k TTF grows linearly (the decomposition needs only
// O(n) here because every relation has a single heavy value). TTL of the
// any-k algorithms remains quadratic — the output itself is Θ(n^2).

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "join/generic_join.h"
#include "query/cq.h"
#include "util/timer.h"
#include "workload/paper_instances.h"

using namespace anyk;
using namespace anyk::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig17_nprr");
  PrintHeader();
  PaperNote("fig17",
            "NPRR TTF grows ~n^2 (100s at n=16k, Java); Recursive/Lazy TTF "
            "grows ~n (300ms at 16k); any-k TTL is ~n^2 like the output");

  const std::vector<size_t> ns = SmokeMode()
                                     ? std::vector<size_t>{200, 400}
                                     : std::vector<size_t>{500, 1000, 2000,
                                                           4000};
  for (size_t n : ns) {
    Database db = MakeI1Database(n, 1700 + n);
    ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);

    // NPRR-style batch: full worst-case-optimal join (TTF == TTL here; the
    // sort is omitted, which only helps the baseline).
    {
      Timer t;
      JoinResultSet rs = GenericJoin(db, q);
      PrintRow("fig17", "4cycle", "I1", n, "NPRR(TTF)", rs.size(),
               t.Seconds());
    }

    for (Algorithm algo : {Algorithm::kRecursive, Algorithm::kLazy}) {
      // TTF.
      RunAndPrint<TropicalDioid>(
          "fig17", "4cycle", "I1", n,
          std::string(AlgorithmName(algo)) + "(TTF)",
          MakeFactory<TropicalDioid>(db, q, algo), 1);
      // TTL (full ranked enumeration) — only for the smaller sizes, since
      // the output is Θ(n^2).
      if (n <= Pick(2000, 400)) {
        auto series = MeasureTT<TropicalDioid>(
            MakeFactory<TropicalDioid>(db, q, algo), SIZE_MAX, {});
        PrintRow("fig17", "4cycle", "I1", n,
                 std::string(AlgorithmName(algo)) + "(TTL)", series.produced,
                 series.total_seconds);
      }
    }
  }
  return 0;
}
