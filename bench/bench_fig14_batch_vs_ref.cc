// Figure 14 (table): our Batch implementation vs a conventional RDBMS-style
// executor on full-result computation. PostgreSQL is unavailable offline, so
// the stand-in is a generic left-deep tuple-at-a-time hash-join pipeline
// with full materialization + sort (join/reference_executor.h). The paper
// found its Batch 12%-54% faster than PSQL; the point reproduced here is
// that Batch is a *competitive* batch baseline, not a strawman.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dioid/lift.h"
#include "join/generic_join.h"
#include "join/reference_executor.h"
#include "query/cq.h"
#include "query/gyo.h"
#include "util/timer.h"
#include "workload/generators.h"

using namespace anyk;
using namespace anyk::bench;

namespace {

// Engine-level Batch, as in the paper: Yannakakis-style full enumeration
// over the reduced DP graph + sort for acyclic queries; worst-case-optimal
// join + sort for cyclic ones. (No per-row conversion layer on either side,
// matching what ReferenceHashJoin measures.)
size_t RunBatch(const Database& db, const ConjunctiveQuery& q) {
  if (IsAcyclic(q)) {
    TDPInstance inst = BuildAcyclicInstance(db, q);
    StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
    BatchEnumerator<TropicalDioid> batch(&g);
    return batch.OutputSize();  // materializes + sorts
  }
  JoinResultSet rs = GenericJoin(db, q);
  const size_t na = q.NumAtoms();
  std::vector<double> weights(rs.size());
  std::vector<const Relation*> rels;
  for (size_t a = 0; a < na; ++a) rels.push_back(&db.Get(q.atom(a).relation));
  for (size_t i = 0; i < rs.size(); ++i) {
    double w = 0;
    for (size_t a = 0; a < na; ++a) w += rels[a]->Weight(rs.witness(i)[a]);
    weights[i] = w;
  }
  std::sort(weights.begin(), weights.end());
  return weights.size();
}

void Compare(const char* label, const Database& db,
             const ConjunctiveQuery& q, size_t n) {
  Timer t1;
  const size_t out_batch = RunBatch(db, q);
  const double batch_s = t1.Seconds();

  // Reference executor ("PSQL stand-in").
  Timer t2;
  BatchOutput ref = ReferenceHashJoin(db, q, /*sort=*/true);
  const double ref_s = t2.Seconds();

  bench::PrintRow("fig14", label, "synthetic", n, "Batch(TTL)", out_batch,
                  batch_s);
  bench::PrintRow("fig14", label, "synthetic", n, "RefExec(TTL)", ref.size(),
                  ref_s);
  std::printf("# fig14 %s: batch_faster_pct=%.0f%%\n", label,
              100.0 * (ref_s - batch_s) / ref_s);
  if (out_batch != ref.size()) {
    std::printf("# WARNING: result count mismatch (%zu vs %zu)\n", out_batch,
                ref.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench(argc, argv, "fig14_batch_vs_ref");
  bench::PrintHeader();
  bench::PaperNote("fig14",
                   "Batch 12%-54% faster than PostgreSQL across 3/4/6-path, "
                   "3/4/6-star, 4/6-cycle on full results");
  {
    const size_t n = bench::Pick(20000, 1500);
    Database db = MakePathDatabase(n, 3, 1401);
    Compare("3path", db, ConjunctiveQuery::Path(3), n);
  }
  {
    const size_t n = bench::Pick(2000, 250);
    Database db = MakePathDatabase(n, 4, 1402);
    Compare("4path", db, ConjunctiveQuery::Path(4), n);
  }
  {
    const size_t n = bench::Pick(100, 40);
    Database db = MakePathDatabase(n, 6, 1403, {.fanout = 5.0});
    Compare("6path", db, ConjunctiveQuery::Path(6), n);
  }
  {
    const size_t n = bench::Pick(20000, 1500);
    Database db = MakeStarDatabase(n, 3, 1404);
    Compare("3star", db, ConjunctiveQuery::Star(3), n);
  }
  {
    const size_t n = bench::Pick(2000, 250);
    Database db = MakeStarDatabase(n, 4, 1405);
    Compare("4star", db, ConjunctiveQuery::Star(4), n);
  }
  {
    const size_t n = bench::Pick(100, 40);
    Database db = MakeStarDatabase(n, 6, 1406, {.fanout = 5.0});
    Compare("6star", db, ConjunctiveQuery::Star(6), n);
  }
  // Cyclic rows use uniform data: closing the cycle discards most of the
  // left-deep pipeline's intermediate tuples, which is where a worst-case
  // optimal join wins (on worst-case-output instances the intermediates
  // roughly equal the output and the generic pipeline is competitive).
  {
    const size_t n = bench::Pick(20000, 1500);
    Database db = MakePathDatabase(n, 4, 1407);
    Compare("4cycle", db, ConjunctiveQuery::Cycle(4), n);
  }
  {
    const size_t n = bench::Pick(3000, 500);
    Database db = MakePathDatabase(n, 6, 1408, {.fanout = 6.0});
    Compare("6cycle", db, ConjunctiveQuery::Cycle(6), n);
  }
  return 0;
}
