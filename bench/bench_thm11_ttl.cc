// Theorem 11: on worst-case-output instances (Cartesian products), Recursive
// computes the *entire sorted output* asymptotically faster than Batch —
// O(n^l (log n + l)) vs Ω(n^l * l * log n) — because shared suffix rankings
// replace general-purpose comparison sorting.

#include <cstddef>
#include <string>
#include <vector>

#include "bench_common.h"
#include "query/cq.h"
#include "workload/generators.h"

using namespace anyk;
using namespace anyk::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "thm11_ttl");
  PrintHeader();
  PaperNote("thm11",
            "Recursive TTL beats Batch on full Cartesian products; the edge "
            "grows with l (more shared suffixes)");

  struct Config {
    size_t n;
    size_t l;
  };
  const std::vector<Config> configs =
      SmokeMode() ? std::vector<Config>{Config{40, 3}, Config{15, 4},
                                        Config{6, 6}}
                  : std::vector<Config>{Config{150, 3}, Config{40, 4},
                                        Config{10, 6}};
  for (Config c : configs) {
    Database db = MakeCartesianDatabase(c.n, c.l, 1100 + c.l);
    ConjunctiveQuery q = ConjunctiveQuery::Product(c.l);
    for (Algorithm algo :
         {Algorithm::kRecursive, Algorithm::kTake2, Algorithm::kLazy,
          Algorithm::kEager, Algorithm::kBatch, Algorithm::kBatchNoSort}) {
      auto series = MeasureTT<TropicalDioid>(
          MakeFactory<TropicalDioid>(db, q, algo), SIZE_MAX, {});
      PrintRow("thm11", "product" + std::to_string(c.l), "cartesian", c.n,
               std::string(AlgorithmName(algo)) + "(TTL)", series.produced,
               series.total_seconds);
    }
  }
  return 0;
}
