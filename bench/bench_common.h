// Shared glue for the figure benchmarks: run a (database, query) pair
// through every ranked-enumeration algorithm and report TT(k) series via the
// structured Reporter (stdout CSV + optional BENCH_<bench>.json; see
// harness.h). Every bench main() starts with InitBench(argc, argv, name) and
// scales its instance sizes with Pick(full, smoke) so `--smoke` runs the
// whole suite in seconds for the CI perf gate.

#ifndef ANYK_BENCH_BENCH_COMMON_H_
#define ANYK_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "anyk/ranked_query.h"
#include "dioid/tropical.h"
#include "harness.h"

namespace anyk {
namespace bench {

/// Enumerator adapter owning the whole query pipeline (so preprocessing is
/// charged to the measured time).
template <typename D>
class OwningEnumerator : public Enumerator<D> {
 public:
  OwningEnumerator(const Database& db, const ConjunctiveQuery& q,
                   typename RankedQuery<D>::Options opts)
      : rq_(db, q, opts) {}
  std::optional<ResultRow<D>> Next() override { return rq_.Next(); }
  bool NextInto(ResultRow<D>* row) override {
    return rq_.enumerator()->NextInto(row);
  }

 private:
  RankedQuery<D> rq_;
};

template <typename D>
std::function<std::unique_ptr<Enumerator<D>>()> MakeFactory(
    const Database& db, const ConjunctiveQuery& q, Algorithm algo) {
  return [&db, &q, algo]() {
    typename RankedQuery<D>::Options opts;
    opts.algorithm = algo;
    opts.enum_opts.with_witness = false;  // benches rank, they don't audit
    return std::make_unique<OwningEnumerator<D>>(db, q, opts);
  };
}

/// Run every algorithm in `algos` on (db, q) up to max_k results.
inline void RunAlgorithms(const std::string& figure, const std::string& query,
                          const std::string& dataset, size_t n,
                          const Database& db, const ConjunctiveQuery& q,
                          size_t max_k, const std::vector<Algorithm>& algos) {
  for (Algorithm algo : algos) {
    RunAndPrint<TropicalDioid>(figure, query, dataset, n, AlgorithmName(algo),
                               MakeFactory<TropicalDioid>(db, q, algo), max_k);
  }
}

}  // namespace bench
}  // namespace anyk

#endif  // ANYK_BENCH_BENCH_COMMON_H_
