// Figure 13 (a-d): 6-cycle queries via the heavy/light decomposition and
// UT-DP. The decomposition materializes bags in O(n^{2-2/6}) = O(n^{5/3}),
// so the any-k TTF scales far better than the O(n^3)-worst-case batch join.

#include <cstddef>

#include "bench_common.h"
#include "query/cq.h"
#include "workload/generators.h"
#include "workload/graph_gen.h"

using namespace anyk;
using namespace anyk::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig13_cycle6");
  PrintHeader();

  PaperNote("fig13a",
            "6-cycle worst-case, all results: Recursive finishes well before "
            "Batch (paper: 5.4s vs 14.1s at n=400)");
  {
    const size_t n = Pick(160, 40);
    Database db = MakeWorstCaseCycleDatabase(n, 6, 1301);
    ConjunctiveQuery q = ConjunctiveQuery::Cycle(6);
    RunAlgorithms("fig13a", "6cycle", "synthetic-worstcase", n, db, q,
                  SIZE_MAX, AllRankedAlgorithms());
  }
  PaperNote("fig13b", "6-cycle large, top n/2: any-k returns in seconds");
  {
    const size_t n = Pick(20000, 1000);
    Database db = MakeWorstCaseCycleDatabase(n, 6, 1302);
    ConjunctiveQuery q = ConjunctiveQuery::Cycle(6);
    RunAlgorithms("fig13b", "6cycle", "synthetic-large", n, db, q, n / 2,
                  AllAnyKAlgorithms());
  }
  PaperNote("fig13c", "6-cycle Bitcoin, top 10n (paper uses 50n)");
  {
    GraphStats stats;
    Database db = MakeBitcoinStandIn(Pick(3000, 800), Pick(18000, 4000), 6, 1303, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Cycle(6);
    RunAlgorithms("fig13c", "6cycle", "bitcoin-standin", stats.edges, db, q,
                  10 * stats.edges, AllAnyKAlgorithms());
  }
  PaperNote("fig13d", "6-cycle TwitterS, top 10n (paper uses 50n)");
  {
    GraphStats stats;
    Database db = MakeTwitterStandIn(Pick(4000, 1000), Pick(30000, 6000), 6, 1304, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Cycle(6);
    RunAlgorithms("fig13d", "6cycle", "twitter-standin", stats.edges, db, q,
                  10 * stats.edges, AllAnyKAlgorithms());
  }
  return 0;
}
