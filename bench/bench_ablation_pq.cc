// Ablation (google-benchmark): design choices called out in DESIGN.md.
// Deliberately outside the Reporter/BENCH_*.json pipeline (harness.h): this
// target is statistical micro-benchmarking, and google-benchmark already
// emits machine-readable output via --benchmark_format=json.
//  * Candidate priority queue: binary heap vs pairing heap. The ANYK-PART
//    analysis assumes O(1) inserts (pairing heap); the paper observes that
//    such structures often lose to binary heaps in practice — we measure it.
//  * Raw heap op throughput for the two structures.
//  * Strategy choice at fixed k (Take2 vs Lazy vs Eager vs All).

#include <benchmark/benchmark.h>
#include <cstddef>
#include <vector>

#include "anyk/anyk_part.h"
#include "anyk/strategies.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "util/binary_heap.h"
#include "util/pairing_heap.h"
#include "util/random.h"
#include "workload/generators.h"

namespace {

using namespace anyk;

struct Shared {
  Database db;
  ConjunctiveQuery q;
  TDPInstance inst;
  StageGraph<TropicalDioid> g;
  Shared()
      : db(MakePathDatabase(100000, 4, 4242)),
        q(ConjunctiveQuery::Path(4)),
        inst(BuildAcyclicInstance(db, q)),
        g(BuildStageGraph<TropicalDioid>(inst)) {}
};

Shared& Instance() {
  static Shared s;
  return s;
}

template <template <class, class, class> class PQ>
void BM_AnyKPartCandPQ(benchmark::State& state) {
  auto& s = Instance();
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    AnyKPartEnumerator<TropicalDioid, Take2Strategy, PQ> e(&s.g);
    size_t produced = 0;
    while (produced < k && e.Next()) ++produced;
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(state.iterations() * k);
}

void BM_Take2BinaryHeapPQ(benchmark::State& state) {
  BM_AnyKPartCandPQ<BinaryHeap>(state);
}
void BM_Take2PairingHeapPQ(benchmark::State& state) {
  BM_AnyKPartCandPQ<PairingHeap>(state);
}
BENCHMARK(BM_Take2BinaryHeapPQ)->Arg(1000)->Arg(10000)->Arg(50000);
BENCHMARK(BM_Take2PairingHeapPQ)->Arg(1000)->Arg(10000)->Arg(50000);

template <template <class> class Strategy>
void BM_Strategy(benchmark::State& state) {
  auto& s = Instance();
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    AnyKPartEnumerator<TropicalDioid, Strategy> e(&s.g);
    size_t produced = 0;
    while (produced < k && e.Next()) ++produced;
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(state.iterations() * k);
}

void BM_StrategyTake2(benchmark::State& s) { BM_Strategy<Take2Strategy>(s); }
void BM_StrategyLazy(benchmark::State& s) { BM_Strategy<LazyStrategy>(s); }
void BM_StrategyEager(benchmark::State& s) { BM_Strategy<EagerStrategy>(s); }
void BM_StrategyAll(benchmark::State& s) { BM_Strategy<AllStrategy>(s); }
BENCHMARK(BM_StrategyTake2)->Arg(10000);
BENCHMARK(BM_StrategyLazy)->Arg(10000);
BENCHMARK(BM_StrategyEager)->Arg(10000);
BENCHMARK(BM_StrategyAll)->Arg(10000);

// Group vs monoid arithmetic (Section 6.2): with the dioid inverse, T-DP
// deviation weights update in O(1); without, the open frontier is rebuilt.
struct StarShared {
  Database db;
  ConjunctiveQuery q;
  TDPInstance inst;
  StageGraph<TropicalDioid> g_inv;
  StageGraph<TropicalMonoidDioid> g_mon;
  StarShared()
      : db(MakeStarDatabase(100000, 4, 777)),
        q(ConjunctiveQuery::Star(4)),
        inst(BuildAcyclicInstance(db, q)),
        g_inv(BuildStageGraph<TropicalDioid>(inst)),
        g_mon(BuildStageGraph<TropicalMonoidDioid>(inst)) {}
};

StarShared& StarInstance() {
  static StarShared s;
  return s;
}

void BM_Take2GroupInverse(benchmark::State& state) {
  auto& s = StarInstance();
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    AnyKPartEnumerator<TropicalDioid, Take2Strategy> e(&s.g_inv);
    size_t produced = 0;
    while (produced < k && e.Next()) ++produced;
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(state.iterations() * k);
}

void BM_Take2MonoidFallback(benchmark::State& state) {
  auto& s = StarInstance();
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    AnyKPartEnumerator<TropicalMonoidDioid, Take2Strategy> e(&s.g_mon);
    size_t produced = 0;
    while (produced < k && e.Next()) ++produced;
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_Take2GroupInverse)->Arg(20000);
BENCHMARK(BM_Take2MonoidFallback)->Arg(20000);

void BM_BinaryHeapOps(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> vals(1 << 16);
  for (auto& v : vals) v = static_cast<double>(rng.Uniform(0, 1 << 20));
  for (auto _ : state) {
    BinaryHeap<double> h;
    for (double v : vals) h.Push(v);
    double sink = 0;
    while (!h.Empty()) sink += h.PopMin();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * vals.size());
}
BENCHMARK(BM_BinaryHeapOps);

void BM_PairingHeapOps(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> vals(1 << 16);
  for (auto& v : vals) v = static_cast<double>(rng.Uniform(0, 1 << 20));
  for (auto _ : state) {
    PairingHeap<double> h;
    for (double v : vals) h.Push(v);
    double sink = 0;
    while (!h.Empty()) sink += h.PopMin();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * vals.size());
}
BENCHMARK(BM_PairingHeapOps);

}  // namespace

BENCHMARK_MAIN();
