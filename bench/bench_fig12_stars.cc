// Figure 12 (a-h): star queries of sizes 3 and 6. Stars are the worst case
// for Recursive's reuse (depth-1 tree): it degenerates to an ANYK-PART-like
// behaviour, and Eager/Lazy win at TTL.

#include <cstddef>

#include "bench_common.h"
#include "query/cq.h"
#include "workload/generators.h"
#include "workload/graph_gen.h"

using namespace anyk;
using namespace anyk::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig12_stars");
  PrintHeader();

  PaperNote("fig12a", "3-star, all results: strict part-variants at TTL");
  {
    const size_t n = Pick(20000, 1500);
    Database db = MakeStarDatabase(n, 3, 1201);
    ConjunctiveQuery q = ConjunctiveQuery::Star(3);
    RunAlgorithms("fig12a", "3star", "synthetic-small", n, db, q,
                  SIZE_MAX, AllRankedAlgorithms());
  }
  PaperNote("fig12b", "3-star large, top n/2");
  {
    const size_t n = Pick(200000, 4000);
    Database db = MakeStarDatabase(n, 3, 1202);
    ConjunctiveQuery q = ConjunctiveQuery::Star(3);
    RunAlgorithms("fig12b", "3star", "synthetic-large", n, db, q, n / 2,
                  AllAnyKAlgorithms());
  }
  PaperNote("fig12c", "3-star Bitcoin, top n/2");
  {
    GraphStats stats;
    Database db = MakeBitcoinStandIn(Pick(5881, 1200), Pick(35592, 7000), 3, 1203, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Star(3);
    RunAlgorithms("fig12c", "3star", "bitcoin-standin", stats.edges, db, q,
                  stats.edges / 2, AllAnyKAlgorithms());
  }

  PaperNote("fig12e",
            "6-star, all results: Recursive behaves like ANYK-PART; Eager "
            "pays off when many results are returned");
  {
    const size_t n = Pick(100, 30);  // full: ~1e7 results, as in the paper
    Database db = MakeStarDatabase(n, 6, 1205);
    ConjunctiveQuery q = ConjunctiveQuery::Star(6);
    RunAlgorithms("fig12e", "6star", "synthetic-small", n, db, q,
                  SIZE_MAX,
                  AllRankedAlgorithms());
  }
  PaperNote("fig12f", "6-star large, top n/2");
  {
    const size_t n = Pick(200000, 4000);
    Database db = MakeStarDatabase(n, 6, 1206);
    ConjunctiveQuery q = ConjunctiveQuery::Star(6);
    RunAlgorithms("fig12f", "6star", "synthetic-large", n, db, q, n / 2,
                  AllAnyKAlgorithms());
  }
  PaperNote("fig12g", "6-star Bitcoin, top n/2");
  {
    GraphStats stats;
    Database db = MakeBitcoinStandIn(Pick(5881, 1200), Pick(35592, 7000), 6, 1207, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Star(6);
    RunAlgorithms("fig12g", "6star", "bitcoin-standin", stats.edges, db, q,
                  stats.edges / 2, AllAnyKAlgorithms());
  }
  return 0;
}
