// Figure 10 (a-l): ranked enumeration of size-4 queries — 4-path, 4-star,
// 4-cycle — on (a,e,i) small synthetic inputs enumerated to completion,
// (b,f,j) large synthetic inputs for the top n/2, and (c,d,g,h,k,l) the
// power-law stand-ins for Bitcoin OTC and Twitter.
//
// Sizes are scaled down from the paper so the whole suite runs on a laptop
// in minutes; the comparisons of interest are *relative* (who wins at small
// k, who wins at TTL).

#include <cstddef>

#include "bench_common.h"
#include "query/cq.h"
#include "workload/generators.h"
#include "workload/graph_gen.h"

using namespace anyk;
using namespace anyk::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig10_size4");
  PrintHeader();

  // ---- (a,b) 4-Path synthetic ----
  PaperNote("fig10a",
            "4-path, all results: Recursive finishes before Batch; "
            "Batch(no-sort) < Recursive < Batch < part-variants");
  {
    const size_t n = Pick(2000, 200);
    Database db = MakePathDatabase(n, 4, 1001);
    ConjunctiveQuery q = ConjunctiveQuery::Path(4);
    RunAlgorithms("fig10a", "4path", "synthetic-small", n, db, q,
                  SIZE_MAX,
                  AllRankedAlgorithms());
  }
  PaperNote("fig10b",
            "4-path large, top n/2: Lazy best; Batch infeasible at n=1e6");
  {
    const size_t n = Pick(200000, 4000);
    Database db = MakePathDatabase(n, 4, 1002);
    ConjunctiveQuery q = ConjunctiveQuery::Path(4);
    RunAlgorithms("fig10b", "4path", "synthetic-large", n, db, q, n / 2,
                  AllAnyKAlgorithms());
  }

  // ---- (c,d) 4-Path on graph stand-ins ----
  PaperNote("fig10c", "4-path Bitcoin, top n/2: Lazy fastest for small k");
  {
    GraphStats stats;
    Database db = MakeBitcoinStandIn(Pick(5881, 1200), Pick(35592, 7000), 4, 1003, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Path(4);
    RunAlgorithms("fig10c", "4path", "bitcoin-standin", stats.edges, db, q,
                  stats.edges / 2, AllAnyKAlgorithms());
  }
  PaperNote("fig10d", "4-path Twitter, top n/2: any-k far ahead of Batch");
  {
    GraphStats stats;
    Database db = MakeTwitterStandIn(Pick(20000, 2000), Pick(220000, 20000), 4, 1004, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Path(4);
    RunAlgorithms("fig10d", "4path", "twitter-standin", stats.edges, db, q,
                  stats.edges / 2, AllAnyKAlgorithms());
  }

  // ---- (e,f,g,h) 4-Star ----
  PaperNote("fig10e",
            "4-star, all results: Recursive degenerates to ANYK-PART "
            "(shallow tree), Eager/Lazy best at TTL");
  {
    const size_t n = Pick(2000, 200);
    Database db = MakeStarDatabase(n, 4, 1005);
    ConjunctiveQuery q = ConjunctiveQuery::Star(4);
    RunAlgorithms("fig10e", "4star", "synthetic-small", n, db, q,
                  SIZE_MAX,
                  AllRankedAlgorithms());
  }
  PaperNote("fig10f", "4-star large, top n/2: Take2 near the top");
  {
    const size_t n = Pick(200000, 4000);
    Database db = MakeStarDatabase(n, 4, 1006);
    ConjunctiveQuery q = ConjunctiveQuery::Star(4);
    RunAlgorithms("fig10f", "4star", "synthetic-large", n, db, q, n / 2,
                  AllAnyKAlgorithms());
  }
  PaperNote("fig10g", "4-star Bitcoin, top n/2: Lazy shines for small k");
  {
    GraphStats stats;
    Database db = MakeBitcoinStandIn(Pick(5881, 1200), Pick(35592, 7000), 4, 1007, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Star(4);
    RunAlgorithms("fig10g", "4star", "bitcoin-standin", stats.edges, db, q,
                  stats.edges / 2, AllAnyKAlgorithms());
  }
  PaperNote("fig10h", "4-star Twitter, top n/2");
  {
    GraphStats stats;
    Database db = MakeTwitterStandIn(Pick(20000, 2000), Pick(220000, 20000), 4, 1008, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Star(4);
    RunAlgorithms("fig10h", "4star", "twitter-standin", stats.edges, db, q,
                  stats.edges / 2, AllAnyKAlgorithms());
  }

  // ---- (i,j,k,l) 4-Cycle (decomposition + UT-DP) ----
  PaperNote("fig10i",
            "4-cycle worst-case, all results: Recursive terminates around "
            "the time Batch starts sorting");
  {
    const size_t n = Pick(1000, 150);
    Database db = MakeWorstCaseCycleDatabase(n, 4, 1009);
    ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);
    RunAlgorithms("fig10i", "4cycle", "synthetic-worstcase", n, db, q,
                  SIZE_MAX, AllRankedAlgorithms());
  }
  PaperNote("fig10j", "4-cycle large, top n/2: any-k TTF ~ n^1.5 not n^2");
  {
    const size_t n = Pick(30000, 2000);
    Database db = MakeWorstCaseCycleDatabase(n, 4, 1010);
    ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);
    RunAlgorithms("fig10j", "4cycle", "synthetic-large", n, db, q, n / 2,
                  AllAnyKAlgorithms());
  }
  PaperNote("fig10k", "4-cycle Bitcoin, top 10n");
  {
    GraphStats stats;
    Database db = MakeBitcoinStandIn(Pick(5881, 1200), Pick(35592, 7000), 4, 1011, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);
    RunAlgorithms("fig10k", "4cycle", "bitcoin-standin", stats.edges, db, q,
                  10 * stats.edges, AllAnyKAlgorithms());
  }
  PaperNote("fig10l", "4-cycle TwitterS, top 10n");
  {
    GraphStats stats;
    Database db = MakeTwitterStandIn(Pick(8000, 1500), Pick(88000, 12000), 4, 1012, &stats);
    ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);
    RunAlgorithms("fig10l", "4cycle", "twitter-standin", stats.edges, db, q,
                  10 * stats.edges, AllAnyKAlgorithms());
  }
  return 0;
}
